"""Alias/escape/mutation summaries and their call-graph fixpoint.

Abstract values
---------------
An :class:`AVal` is two sets of *atoms*:

* ``ids`` — what object a value may *be*;
* ``contents`` — what its *elements* may be.

Atoms are ``("p", param, depth)`` with depth 0 (the parameter object
itself) or 1 (an element of it), ``("pa", param, attr)`` (the object
held by ``param.attr``), and ``("fn", fid)`` (a reference to a project
function).  A value with no ``p``/``pa`` atoms in ``ids`` is *fresh*:
mutating it cannot be observed by the caller.

Evaluation is flow-sensitive over the linear op list: rebinding a name
kills its aliases (the ``params = {k: v.copy() ...}`` defensive-copy
idiom stays silent), and both branches of a conditional execute
(may-analysis).  Unknown external calls return fresh values — the
analysis prefers silence to false positives.

Summaries
---------
Per function: which param atoms it mutates (and where), what its
return value aliases, which project functions it calls directly, which
parameters/functions it registers as flow continuations or event
handlers, and which substrate-private attribute writes it performs.
Summaries are propagated callee→caller over the call graph (mutations
and registrations map through the argument bindings; returns are
substituted) and iterated to a fixpoint, Gauss–Seidel style in
deterministic function order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.lint.project.graph import (
    SUBSTRATE_NAMES,
    SUBSTRATE_PRIVATE_LEAVES,
    ProjectGraph,
)

Atom = tuple  # ("p", name, depth) | ("pa", name, attr) | ("fn", fid)

_EMPTY: frozenset = frozenset()


@dataclass(frozen=True)
class AVal:
    ids: frozenset = _EMPTY
    contents: frozenset = _EMPTY

    def __or__(self, other: "AVal") -> "AVal":
        return AVal(self.ids | other.ids, self.contents | other.contents)


FRESH = AVal()


def _collapse1(atoms: Iterable[Atom]) -> frozenset:
    """Demote every object atom to depth 1 (an element of it)."""
    out = set()
    for a in atoms:
        if a[0] == "p":
            out.add(("p", a[1], 1))
        elif a[0] == "pa":
            out.add(("p", a[1], 1))
        elif a[0] == "fn":
            out.add(a)
    return frozenset(out)


def _elements(av: AVal) -> frozenset:
    """Atoms an element of ``av`` may be."""
    return av.contents | _collapse1(av.ids)


# ----------------------------------------------------------------------
# External-call knowledge


#: Calls that break aliasing entirely (deep copy semantics).
DEEP_BREAKERS = frozenset({"copy.deepcopy", "json.loads", "pickle.loads"})
#: Constructors returning a *fresh* container of the argument's elements.
SHALLOW_COPIES = frozenset(
    {"list", "dict", "tuple", "set", "frozenset", "sorted", "reversed", "copy.copy"}
)
#: Element-pairing iterators: results contain the arguments' elements.
PAIRING = frozenset({"zip", "enumerate", "map", "filter", "itertools.chain"})
#: Calls returning an *element* of their argument.
ELEMENT_PICKS = frozenset({"min", "max", "next"})
#: Columnar constructors: fresh wrappers whose *contents* alias their
#: arguments (a ColumnBatch built from a shared column still reaches
#: the shared arrays).  Matched by trailing name so both the class and
#: its dotted import path hit.
COLUMN_CTORS = frozenset(
    {
        "ColumnBatch", "GroupedBatch", "ArrayColumn", "ScalarColumn",
        "StringColumn", "TupleColumn", "ObjectColumn",
    }
)

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "update", "setdefault", "popitem", "add", "discard",
        "fill", "resize", "put",
    }
)
#: Mutators that also *store* their arguments into the receiver.
STORING_MUTATORS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault"}
)
#: Non-mutating methods with known aliasing behaviour.
_METH_ELEMENT = frozenset({"get"})
_METH_VIEW = frozenset({"items", "keys", "values"})
_METH_SHALLOW = frozenset({"copy", "tolist", "most_common"})

#: Flow-registration primitives: callbacks handed to these become
#: *flow continuations* (PIC401: never call one synchronously).
#: ``on_ready`` is the SplitGate registrar — its callbacks fire from
#: flow completions (or inline at registration when the split is
#: already ready), so they carry the same no-sync-invoke contract.
#: ``_arm_component_timer`` is the per-component completion-timer
#: registrar: its callback fires from the event loop when the soonest
#: flow in one component finishes, so it is a continuation like any
#: ``transfer`` callback.
_FLOW_POSITIONAL = {
    "transfer": 4,
    "start_flow": 4,
    "on_ready": 1,
    "_arm_component_timer": 2,
}
_FLOW_BATCH = frozenset({"transfer_batch", "start_flows"})
_FLOW_KW_ONLY = frozenset({"write", "read"})
#: Event/slot registration primitives: callbacks become *event
#: handlers* (PIC402 seeds).
_HANDLER_REGISTRARS = frozenset(
    {"schedule", "schedule_at", "schedule_serialized", "call_later", "request"}
)


@dataclass
class Summary:
    """Converged per-function facts, serializable for comparison."""

    mutations: dict[Atom, list] = field(default_factory=dict)
    ret: AVal = FRESH
    ret_sites: dict[Atom, list] = field(default_factory=dict)
    direct_calls: list = field(default_factory=list)
    registers_flow_params: set = field(default_factory=set)
    registers_handler_params: set = field(default_factory=set)
    flow_fns: set = field(default_factory=set)
    handler_fns: set = field(default_factory=set)
    bound: dict = field(default_factory=dict)  # class_fq -> {attr: {fid}}
    substrate_writes: list = field(default_factory=list)

    def key(self) -> str:
        return json.dumps(
            {
                "m": sorted([list(a), s] for a, s in self.mutations.items()),
                "ri": sorted(map(list, self.ret.ids)),
                "rc": sorted(map(list, self.ret.contents)),
                "dc": sorted(self.direct_calls),
                "fp": sorted(self.registers_flow_params),
                "hp": sorted(self.registers_handler_params),
                "ff": sorted(self.flow_fns),
                "hf": sorted(self.handler_fns),
                "b": {c: {a: sorted(f) for a, f in kw.items()} for c, kw in sorted(self.bound.items())},
                "sw": sorted(self.substrate_writes),
            },
            sort_keys=True,
        )


class _Evaluator:
    """One pass of abstract interpretation over a function's ops."""

    def __init__(self, analysis: "ProjectAnalysis", fid: str) -> None:
        self.an = analysis
        self.graph = analysis.graph
        self.fid = fid
        self.fn = analysis.graph.function_ir[fid]
        self.modkey = fid.split("::", 1)[0]
        self.ir = analysis.graph.modules.get(self.modkey) or {"aliases": {}}
        self.aliases: dict[str, str] = self.ir.get("aliases", {})
        self.summary = Summary()
        self.env: dict[str, AVal] = {}
        self.tenv: dict[str, str] = {}
        # Modules that *define* a substrate class own its internals:
        # their helper functions are the implementation, not intruders.
        self._owns_substrate = any(
            self.graph.is_substrate_class(f"{self.modkey}.{c}")
            for c in self.ir.get("classes", {})
        )

    def run(self) -> Summary:
        for p in self.fn["params"]:
            self.env[p] = AVal(
                frozenset({("p", p, 0)}), frozenset({("p", p, 1)})
            )
            ann = self.fn["param_types"].get(p)
            cfq = self.graph.resolve_class(ann)
            if cfq:
                self.tenv[p] = cfq
        if self.fn["class"] is not None and self.fn["params"][:1] == ["self"]:
            self.tenv["self"] = f"{self.modkey}.{self.fn['class']}"
        elif self.fn["class"] is not None and "self" not in self.env:
            # nested def / lambda inside a method: treat the free `self`
            # as the enclosing instance so method refs resolve.
            self.tenv["self"] = f"{self.modkey}.{self.fn['class']}"
        for op in self.fn["ops"]:
            self.op(op)
        return self.summary

    # -- ops -----------------------------------------------------------

    def op(self, op: list) -> None:
        kind = op[0]
        if kind == "bind":
            _, name, desc, _line = op
            value = self.eval(desc)
            self.env[name] = value
            self._track_type(name, desc)
        elif kind == "unpack":
            _, names, desc, _line = op
            value = self.eval(desc)
            element = AVal(_elements(value), _collapse1(_elements(value)))
            for name in names:
                self.env[name] = element
        elif kind == "eval":
            self.eval(op[1])
        elif kind == "mutate":
            _, target, value, how, line, col = op
            value_av = self.eval(value) if value is not None else FRESH
            self.mutate(target, value_av, line, col, via="direct")
        elif kind == "ret":
            _, desc, line, col = op
            value = self.eval(desc)
            self.summary.ret = self.summary.ret | value
            for atom in value.ids | value.contents:
                self.summary.ret_sites.setdefault(atom, [line, col])
        elif kind == "defl":
            _, name, fid, _line = op
            self.env[name] = AVal(frozenset({("fn", fid)}))
        elif kind == "kill":
            self.env.pop(op[1], None)
        elif kind == "raise":
            if op[1] is not None:
                self.eval(op[1])
        elif kind == "if":
            # May-analysis: evaluate the test, then both branches.
            self.eval(op[1])
            for sub in op[2]:
                self.op(sub)
            for sub in op[3]:
                self.op(sub)
        elif kind == "with":
            for ctx, var in op[1]:
                self.eval(ctx)
                if var is not None:
                    self.env[var] = FRESH
                    self.tenv.pop(var, None)
            for sub in op[2]:
                self.op(sub)
        elif kind == "try":
            for sub in op[1]:
                self.op(sub)
            for _name, handler_ops in op[2]:
                for sub in handler_ops:
                    self.op(sub)
            for sub in op[3]:
                self.op(sub)
            for sub in op[4]:
                self.op(sub)

    def _track_type(self, name: str, desc: list) -> None:
        cfq = self.static_type(desc)
        if cfq is not None:
            self.tenv[name] = cfq
        else:
            self.tenv.pop(name, None)

    def static_type(self, desc: list) -> str | None:
        kind = desc[0]
        if kind == "name":
            return self.tenv.get(desc[1])
        if kind == "attr":
            base_t = self.static_type(desc[1])
            if base_t is not None:
                return self.graph.attr_type(base_t, desc[2])
            return None
        if kind == "call":
            dotted = self.callee_dotted(desc[1])
            return self.graph.resolve_class(dotted) if dotted else None
        return None

    # -- mutation recording --------------------------------------------

    def mutate(self, target: list, value: AVal, line: int, col: int, via: str) -> None:
        """Record a store/del/aug/mutator-method hit on ``target``."""
        if target[0] == "attr":
            base = self.eval(target[1])
            attr = target[2]
            for atom in base.ids:
                if atom[0] == "p" and atom[2] == 0:
                    self._add_mutation(("pa", atom[1], attr), line, col, via)
                elif atom[0] in ("p", "pa"):
                    self._add_mutation(_one(_collapse1({atom})), line, col, via)
        else:
            base_desc = target[1] if target[0] in ("elem", "slice") else target
            base = self.eval(base_desc)
            for atom in base.ids:
                if atom[0] in ("p", "pa"):
                    self._add_mutation(atom, line, col, via)
        self._check_substrate_write(target, line, col)
        root = _root_name(target)
        if root is not None and root in self.env:
            # Stored values keep their depth: appending a tuple that
            # holds a level-0 parameter makes the receiver's contents
            # reach that parameter (list.append / d[k] = v / insert).
            extra = value.ids | value.contents
            if extra:
                old = self.env[root]
                self.env[root] = AVal(old.ids, old.contents | frozenset(extra))

    def _add_mutation(self, atom: Atom, line: int, col: int, via: str) -> None:
        self.summary.mutations.setdefault(atom, [line, col, via])

    def _check_substrate_write(self, target: list, line: int, col: int) -> None:
        """Flag ``<substrate>._private`` writes outside the owning class."""
        chain = _attr_chain(target)
        if chain is None:
            return
        names, leaf = chain
        if not leaf.startswith("_") or leaf.startswith("__"):
            return
        own = self.graph.class_of_method(self.fid)
        if self._owns_substrate or self.graph.is_substrate_class(own):
            return
        # Type-based: the receiver's static class is a substrate class.
        recv_desc = target[1] if target[0] in ("elem", "slice") else target
        if recv_desc[0] == "attr":
            recv_type = self.static_type(recv_desc[1])
        else:
            recv_type = None
        typed = self.graph.is_substrate_class(recv_type)
        named = any(n in SUBSTRATE_NAMES for n in names)
        # Leaf-based: partition-maintenance state is substrate-private
        # no matter what the receiver is called — ``flows._dirty_links``
        # through an unconventional alias is still a PIC402 write.
        private_leaf = leaf in SUBSTRATE_PRIVATE_LEAVES and names != ["self"]
        if typed or named or private_leaf:
            self.summary.substrate_writes.append(
                [line, col, ".".join(names + [leaf])]
            )

    # -- expression evaluation -----------------------------------------

    def eval(self, desc: list) -> AVal:
        kind = desc[0]
        if kind == "const":
            return FRESH
        if kind == "name":
            return self.env.get(desc[1], FRESH)
        if kind == "attr":
            base = self.eval(desc[1])
            ids = set()
            for atom in base.ids:
                if atom[0] == "p" and atom[2] == 0:
                    ids.add(("pa", atom[1], desc[2]))
                elif atom[0] in ("p", "pa"):
                    ids.update(_collapse1({atom}))
            # A method reference on a known class is a function ref.
            base_t = self.static_type(desc[1])
            if base_t is not None:
                for fid in self.graph.method_candidates(base_t, desc[2]):
                    ids.add(("fn", fid))
                for fid in self.an.bound_callbacks(base_t, desc[2]):
                    ids.add(("fn", fid))
            return AVal(frozenset(ids), _collapse1(ids))
        if kind == "elem":
            base = self.eval(desc[1])
            elems = _elements(base)
            return AVal(elems, _collapse1(elems))
        if kind == "slice":
            base = self.eval(desc[1])
            return AVal(frozenset(a for a in base.ids if a[0] == "fn"), _elements(base))
        if kind == "make":
            contents = set()
            for item in desc[1]:
                if item[0] == "spread":
                    contents.update(_elements(self.eval(item[1])))
                else:
                    av = self.eval(item)
                    contents.update(av.ids | av.contents)
            return AVal(_EMPTY, frozenset(contents))
        if kind == "comp":
            saved_env, saved_tenv = dict(self.env), dict(self.tenv)
            try:
                for names, it in desc[1]:
                    it_av = self.eval(it)
                    element = AVal(_elements(it_av), _collapse1(_elements(it_av)))
                    for name in names:
                        self.env[name] = element
                        self.tenv.pop(name, None)
                contents = set()
                for elt in desc[2]:
                    av = self.eval(elt)
                    contents.update(av.ids | av.contents)
            finally:
                self.env, self.tenv = saved_env, saved_tenv
            return AVal(_EMPTY, frozenset(contents))
        if kind == "union":
            out = FRESH
            for item in desc[1]:
                out = out | self.eval(item)
            return out
        if kind == "bin":
            l, r = self.eval(desc[2]), self.eval(desc[3])
            return AVal(_EMPTY, l.contents | r.contents)
        if kind == "cmp":
            for item in desc[2]:
                self.eval(item)
            return FRESH
        if kind == "seq":
            for item in desc[1]:
                self.eval(item)
            return FRESH
        if kind == "walrus":
            value = self.eval(desc[2])
            self.env[desc[1]] = value
            return value
        if kind == "spread":
            return self.eval(desc[1])
        if kind == "fnref":
            return AVal(frozenset({("fn", desc[1])}))
        if kind == "call":
            return self.eval_call(desc)
        return FRESH

    # -- calls ---------------------------------------------------------

    def callee_dotted(self, func: list) -> str | None:
        """Canonical dotted name of the callee, via import aliases."""
        parts: list[str] = []
        node = func
        if node[0] == "meth":
            parts.append(node[2])
            node = node[1]
            while node[0] == "attr":
                parts.append(node[2])
                node = node[1]
        elif node[0] == "ref":
            return self.aliases.get(node[1], node[1])
        if node[0] != "name":
            return None
        head = self.aliases.get(node[1])
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))

    def eval_call(self, desc: list) -> AVal:
        _, func, arg_descs, kw_descs, line, col = desc
        args: list[AVal] = []
        for a in arg_descs:
            if a[0] == "spread":
                av = self.eval(a[1])
                args.append(AVal(_elements(av), _collapse1(_elements(av))))
            else:
                args.append(self.eval(a))
        kwargs = {kw: self.eval(d) for kw, d in kw_descs}
        tail = func[2] if func[0] == "meth" else (func[1] if func[0] == "ref" else None)

        self._scan_registrations(func, tail, args, kwargs)

        callees = self._resolve_callees(func, tail)
        result = FRESH
        if callees:
            for fid in callees:
                self.summary.direct_calls.append([fid, line, col])
                result = result | self._apply_summary(fid, func, args, kwargs, line, col)
            return result

        # Class constructor?
        dotted = self.callee_dotted(func)
        cfq = self.graph.resolve_class(dotted) if dotted else None
        if cfq is None and func[0] == "ref":
            local = f"{self.modkey}.{func[1]}"
            cfq = local if local in self.graph.classes else None
        if cfq is not None:
            self._record_ctor_bindings(cfq, kwargs)
            ctor = self.graph.inherited_method(cfq, "__init__")
            if ctor is not None:
                self._apply_summary(ctor, ["ref", "__init__"], [FRESH] + args, kwargs, line, col)
            contents = set()
            for av in list(args) + list(kwargs.values()):
                contents.update(av.ids | av.contents)
            return AVal(_EMPTY, frozenset(contents))

        return self._external_call(func, tail, dotted, args, line, col)

    def _resolve_callees(self, func: list, tail: str | None) -> list[str]:
        """Project functions this call may invoke directly."""
        out: list[str] = []
        if func[0] == "ref":
            name = func[1]
            bound = self.env.get(name)
            if bound is not None:
                out.extend(a[1] for a in sorted(bound.ids) if a[0] == "fn")
            if not out:
                dotted = self.aliases.get(name, None)
                if dotted is None:
                    dotted = f"{self.modkey}.{name}"
                fid = self.graph.resolve_function(dotted)
                if fid is not None:
                    out.append(fid)
        elif func[0] == "meth":
            base_desc, attr = func[1], func[2]
            dotted = self.callee_dotted(func)
            fid = self.graph.resolve_function(dotted) if dotted else None
            if fid is not None:
                return [fid]
            base_t = self.static_type(base_desc)
            if base_t is not None:
                out.extend(self.graph.method_candidates(base_t, attr))
                out.extend(
                    f for f in self.an.bound_callbacks(base_t, attr) if f not in out
                )
            else:
                base_av = self.eval(base_desc)
                out.extend(a[1] for a in sorted(base_av.ids) if a[0] == "fn")
        elif func[0] == "desc":
            av = self.eval(func[1])
            out.extend(a[1] for a in sorted(av.ids) if a[0] == "fn")
        return out

    def _apply_summary(
        self,
        fid: str,
        func: list,
        args: list[AVal],
        kwargs: dict[str, AVal],
        line: int,
        col: int,
    ) -> AVal:
        callee = self.graph.function_ir.get(fid)
        summary = self.an.summaries.get(fid)
        if callee is None or summary is None:
            return FRESH
        params = callee["params"]
        argmap: dict[str, AVal] = {}
        positional = list(args)
        if (
            callee["class"] is not None
            and params[:1] == ["self"]
            and func[0] in ("meth", "desc", "ref")
        ):
            if func[0] == "meth":
                argmap["self"] = self.eval(func[1])
            else:
                argmap["self"] = FRESH
            rest = params[1:]
        else:
            rest = params
        for pname, av in zip(rest, positional):
            argmap[pname] = av
        for kw, av in kwargs.items():
            if kw in params:
                argmap[kw] = av

        def subst(atoms: Iterable[Atom]) -> frozenset:
            out = set()
            for atom in atoms:
                if atom[0] == "fn":
                    out.add(atom)
                elif atom[0] == "p":
                    av = argmap.get(atom[1])
                    if av is None:
                        continue
                    out.update(av.ids if atom[2] == 0 else _elements(av))
                elif atom[0] == "pa":
                    av = argmap.get(atom[1])
                    if av is None:
                        continue
                    for a in av.ids:
                        if a[0] == "p" and a[2] == 0:
                            out.add(("pa", a[1], atom[2]))
                        else:
                            out.update(_collapse1({a}))
            return frozenset(out)

        via = callee["name"]
        for atom in summary.mutations:
            for mapped in subst({atom}):
                if mapped[0] in ("p", "pa"):
                    self._add_mutation(mapped, line, col, via)
        for pname in summary.registers_flow_params:
            av = argmap.get(pname)
            if av is not None:
                self._register_flow(av)
        for pname in summary.registers_handler_params:
            av = argmap.get(pname)
            if av is not None:
                self._register_handler(av)
        return AVal(subst(summary.ret.ids), subst(summary.ret.contents))

    def _external_call(
        self,
        func: list,
        tail: str | None,
        dotted: str | None,
        args: list[AVal],
        line: int,
        col: int,
    ) -> AVal:
        key = dotted or tail
        if key is not None and key.rsplit(".", 1)[-1] in COLUMN_CTORS:
            contents = set()
            for av in args:
                contents.update(av.ids | av.contents)
            return AVal(_EMPTY, frozenset(contents))
        if key in DEEP_BREAKERS:
            return FRESH
        if key in SHALLOW_COPIES or tail in SHALLOW_COPIES and func[0] == "ref":
            if not args:
                return FRESH
            return AVal(_EMPTY, _elements(args[0]))
        if (key in PAIRING or tail in PAIRING and func[0] == "ref") and args:
            contents = set()
            for av in args:
                contents.update(_elements(av))
            return AVal(_EMPTY, frozenset(contents))
        if key in ELEMENT_PICKS and args:
            elems = _elements(args[0])
            return AVal(elems, _collapse1(elems))
        if func[0] == "meth":
            base = self.eval(func[1])
            attr = func[2]
            if attr in MUTATOR_METHODS:
                value = FRESH
                if attr in STORING_MUTATORS:
                    for av in args:
                        value = value | av
                self.mutate(func[1], value, line, col, via=f".{attr}()")
                if attr in ("pop", "popitem"):
                    elems = _elements(base)
                    return AVal(elems, _collapse1(elems))
                return FRESH
            if attr in _METH_ELEMENT:
                elems = _elements(base)
                return AVal(elems, _collapse1(elems))
            if attr in _METH_VIEW:
                return AVal(_EMPTY, _elements(base))
            if attr in _METH_SHALLOW:
                return AVal(_EMPTY, _elements(base))
        return FRESH

    # -- registration scanning -----------------------------------------

    def _scan_registrations(
        self,
        func: list,
        tail: str | None,
        args: list[AVal],
        kwargs: dict[str, AVal],
    ) -> None:
        if tail is None or func[0] != "meth":
            return
        if tail in _FLOW_POSITIONAL:
            idx = _FLOW_POSITIONAL[tail]
            if len(args) > idx:
                self._register_flow(args[idx])
            if "on_complete" in kwargs:
                self._register_flow(kwargs["on_complete"])
        elif tail in _FLOW_BATCH:
            for av in list(args) + list(kwargs.values()):
                self._register_flow(av)
        elif tail in _FLOW_KW_ONLY:
            if "on_complete" in kwargs:
                self._register_flow(kwargs["on_complete"])
        elif tail in _HANDLER_REGISTRARS:
            for av in list(args) + list(kwargs.values()):
                self._register_handler(av)

    def _register_flow(self, av: AVal) -> None:
        for atom in av.ids | av.contents:
            if atom[0] == "fn":
                self.summary.flow_fns.add(atom[1])
            elif atom[0] in ("p", "pa"):
                self.summary.registers_flow_params.add(atom[1])

    def _register_handler(self, av: AVal) -> None:
        for atom in av.ids | av.contents:
            if atom[0] == "fn":
                self.summary.handler_fns.add(atom[1])
            elif atom[0] in ("p", "pa"):
                self.summary.registers_handler_params.add(atom[1])

    def _record_ctor_bindings(self, cfq: str, kwargs: dict[str, AVal]) -> None:
        for kw, av in kwargs.items():
            fids = {atom[1] for atom in av.ids | av.contents if atom[0] == "fn"}
            if fids:
                self.summary.bound.setdefault(cfq, {}).setdefault(kw, set()).update(
                    fids
                )


def _root_name(desc: list) -> str | None:
    """The local name a store chain is rooted at, if any."""
    while desc[0] in ("elem", "slice", "attr"):
        desc = desc[1]
    return desc[1] if desc[0] == "name" else None


def _attr_chain(desc: list) -> tuple[list[str], str] | None:
    """``(["self", "cluster"], "_flows")`` for ``self.cluster._flows[...]``.

    Returns None when the target is not an attribute store/chain.
    """
    # Walk down to the innermost attribute link in the *target* chain.
    names: list[str] = []
    node = desc
    while node[0] in ("elem", "slice"):
        node = node[1]
    if node[0] != "attr":
        return None
    leaf = node[2]
    node = node[1]
    while True:
        if node[0] == "attr":
            names.append(node[2])
            node = node[1]
        elif node[0] in ("elem", "slice"):
            node = node[1]
        elif node[0] == "name":
            names.append(node[1])
            break
        else:
            break
    names.reverse()
    return names, leaf


def _one(atoms: frozenset) -> Atom:
    return min(atoms, default=("p", "?", 1))


class ProjectAnalysis:
    """Converged whole-program facts, ready for project rules."""

    MAX_ROUNDS = 8

    def __init__(self, modules: Iterable[dict[str, Any]]) -> None:
        self.graph = ProjectGraph(modules)
        self.summaries: dict[str, Summary] = {}
        self._bound: dict[str, dict[str, set]] = {}
        self._typestate: Any = None
        self._units: Any = None
        self._interference: Any = None
        self._converge()

    def typestate(self) -> Any:
        """Lazily-run resource-lifecycle analysis (PIC5xx rules)."""
        if self._typestate is None:
            from repro.lint.project.typestate import TypestateAnalysis

            self._typestate = TypestateAnalysis(self)
        return self._typestate

    def unit_taint(self) -> Any:
        """Lazily-run quantity-unit taint analysis (PIC6xx rules)."""
        if self._units is None:
            from repro.lint.project.units import UnitAnalysis

            self._units = UnitAnalysis(self)
        return self._units

    def interference(self) -> Any:
        """Lazily-run concurrency-interference analysis (PIC7xx rules)."""
        if self._interference is None:
            from repro.lint.project.interference import InterferenceAnalysis

            self._interference = InterferenceAnalysis(self)
        return self._interference

    def bound_callbacks(self, cfq: str, attr: str) -> list[str]:
        """Functions bound to ``cfq(attr=...)`` at any constructor site."""
        out: set = set()
        for cls in self.graph.ancestors(cfq) or [cfq]:
            out.update(self._bound.get(cls, {}).get(attr, set()))
        return sorted(out)

    def _converge(self) -> None:
        fids = sorted(self.graph.function_ir)
        keys = {fid: "" for fid in fids}
        for _round in range(self.MAX_ROUNDS):
            changed = False
            for fid in fids:
                summary = _Evaluator(self, fid).run()
                self.summaries[fid] = summary
                new_key = summary.key()
                if new_key != keys[fid]:
                    keys[fid] = new_key
                    changed = True
            self._bound = {}
            for summary in self.summaries.values():
                for cfq, kws in summary.bound.items():
                    dest = self._bound.setdefault(cfq, {})
                    for kw, fids_set in kws.items():
                        dest.setdefault(kw, set()).update(fids_set)
            if not changed:
                break

    # -- derived facts for rules ---------------------------------------

    def flow_continuations(self) -> set:
        out: set = set()
        for summary in self.summaries.values():
            out.update(summary.flow_fns)
        return out

    def handler_seeds(self) -> set:
        out: set = set()
        for summary in self.summaries.values():
            out.update(summary.handler_fns)
        return out | self.flow_continuations()

    def handler_reachable(self) -> set:
        """Functions that may execute during simulated event dispatch."""
        reached = set(self.handler_seeds())
        frontier = sorted(reached)
        while frontier:
            fid = frontier.pop()
            summary = self.summaries.get(fid)
            if summary is None:
                continue
            for callee, _line, _col in summary.direct_calls:
                if callee not in reached:
                    reached.add(callee)
                    frontier.append(callee)
        return reached


def analyze_project(modules: Iterable[dict[str, Any]]) -> ProjectAnalysis:
    return ProjectAnalysis(modules)
