"""Project-wide indexes over module IRs.

Builds the module graph (path ↔ dotted module name), the fully
qualified class and function tables, resolves base classes (chasing
re-exports through package ``__init__`` alias tables), and answers the
dispatch questions the summary propagation needs:

* which concrete methods can ``program.partition(...)`` reach, given
  ``program: PICProgram``? (nearest inherited definition plus every
  subclass override);
* which classes are ``PICProgram`` programs at all;
* what type does ``self.cluster`` have inside ``JobRunner``?
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

#: Simulator-substrate classes whose internals event handlers must not
#: reach into (PIC402).  Matched by class-name tail so fixtures without
#: the real imports still participate.
SUBSTRATE_CLASS_TAILS = frozenset(
    {
        "Simulation",
        "FlowNetwork",
        "Cluster",
        "TrafficMeter",
        "DistributedFileSystem",
        "Namenode",
        "SlotScheduler",
        "ResourceManager",
    }
)

#: Conventional receiver names that denote substrate objects when no
#: type information is available (``sim.schedule``, ``cluster._x``...).
SUBSTRATE_NAMES = frozenset(
    {"sim", "simulation", "cluster", "network", "net", "meter", "dfs", "namenode"}
)

#: Attribute names of the flow network's partition-maintenance state —
#: the link union-find, component table, dirty-set and link adjacency.
#: Writing any of these from outside the owning class corrupts the
#: incremental-rebalancing invariants (a stale ``_uf_parent`` entry or
#: an unmarked dirty link silently freezes a component's rates), so a
#: write to one of these leaves is substrate-private *regardless* of
#: what the receiver happens to be called (PIC402).
SUBSTRATE_PRIVATE_LEAVES = frozenset(
    {"_uf_parent", "_comp", "_dirty_links", "_adj", "_dead_pairs"}
)


def module_name_for_path(path: Path) -> tuple[str | None, bool]:
    """Dotted module name of ``path`` by walking up ``__init__.py`` files.

    Returns ``(name, is_package)``; ``name`` is ``None`` for scripts
    that live outside any package.
    """
    try:
        resolved = path.resolve()
    except OSError:
        return None, False
    is_package = resolved.name == "__init__.py"
    parts: list[str] = [] if is_package else [resolved.stem]
    current = resolved.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if not parts:
        return None, is_package
    return ".".join(reversed(parts)), is_package


def module_name_for_virtual_path(path: str) -> tuple[str | None, bool]:
    """Module name for in-memory sources: every directory is a package."""
    p = Path(path)
    if p.suffix != ".py":
        return None, False
    is_package = p.name == "__init__.py"
    parts = list(p.parts[:-1]) + ([] if is_package else [p.stem])
    parts = [part for part in parts if part not in (".", "/")]
    if not parts:
        return None, is_package
    return ".".join(parts), is_package


class ProjectGraph:
    """Class/function indexes and resolution over a set of module IRs."""

    def __init__(self, modules: Iterable[dict[str, Any]]) -> None:
        #: module dotted name -> module IR (unnamed modules keyed by path)
        self.modules: dict[str, dict[str, Any]] = {}
        #: fully-qualified class name -> (modkey, class name, class info)
        self.classes: dict[str, tuple[str, str, dict[str, Any]]] = {}
        #: fully-qualified function name -> fid
        self.functions: dict[str, str] = {}
        #: fid -> function IR
        self.function_ir: dict[str, dict[str, Any]] = {}
        #: fid -> path (for findings)
        self.fid_path: dict[str, str] = {}

        for ir in sorted(modules, key=lambda m: m["path"]):
            modkey = ir["module"] or ir["path"]
            self.modules[modkey] = ir
            for fid, fn in ir["functions"].items():
                self.function_ir[fid] = fn
                self.fid_path[fid] = ir["path"]
            for cname, info in ir["classes"].items():
                cfq = f"{modkey}.{cname}"
                self.classes[cfq] = (modkey, cname, info)
                for mname, fid in info["methods"].items():
                    self.functions[f"{cfq}.{mname}"] = fid
            for fid, fn in ir["functions"].items():
                if fn["class"] is None and "." not in fn["qual"]:
                    self.functions[f"{modkey}.{fn['qual']}"] = fid

        self._resolved_bases: dict[str, list[str]] = {}
        for cfq in self.classes:
            self._resolved_bases[cfq] = self._resolve_bases(cfq)
        self._subclasses: dict[str, set[str]] = {}
        for cfq, bases in self._resolved_bases.items():
            for base in bases:
                self._subclasses.setdefault(base, set()).add(cfq)

    # -- dotted-name resolution ---------------------------------------

    def chase(self, dotted: str, depth: int = 4) -> str:
        """Follow re-export aliases until ``dotted`` names a definition.

        ``repro.apps.kmeans.KMeansProgram`` chases through the package
        ``__init__``'s ``from .program import KMeansProgram`` alias to
        ``repro.apps.kmeans.program.KMeansProgram``.
        """
        for _ in range(depth):
            if dotted in self.classes or dotted in self.functions:
                return dotted
            head, _, tail = dotted.rpartition(".")
            if not head or tail == "":
                return dotted
            ir = self.modules.get(head)
            if ir is None:
                return dotted
            target = ir["aliases"].get(tail)
            if target is None or target == dotted:
                return dotted
            dotted = target
        return dotted

    def resolve_class(self, dotted: str | None) -> str | None:
        if not dotted:
            return None
        dotted = self.chase(dotted)
        return dotted if dotted in self.classes else None

    def resolve_function(self, dotted: str | None) -> str | None:
        if not dotted:
            return None
        dotted = self.chase(dotted)
        fq = self.functions.get(dotted)
        return fq

    # -- class hierarchy -----------------------------------------------

    def _resolve_bases(self, cfq: str) -> list[str]:
        _, _, info = self.classes[cfq]
        out: list[str] = []
        for raw in info["bases"]:
            resolved = self.resolve_class(raw)
            if resolved is not None:
                out.append(resolved)
            else:
                out.append(raw)  # external base; keep for tail matching
        return out

    def bases(self, cfq: str) -> list[str]:
        return self._resolved_bases.get(cfq, [])

    def ancestors(self, cfq: str) -> list[str]:
        """``cfq`` plus every resolvable base, nearest-first."""
        seen: list[str] = []
        stack = [cfq]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.append(current)
            stack.extend(self.bases(current))
        return seen

    def descendants(self, cfq: str) -> set[str]:
        out: set[str] = set()
        stack = [cfq]
        while stack:
            for sub in self._subclasses.get(stack.pop(), ()):
                if sub not in out:
                    out.add(sub)
                    stack.append(sub)
        return out

    def has_base_tail(self, cfq: str, tail: str) -> bool:
        """Does ``cfq``'s (transitive) base chain include a class whose
        name ends in ``tail``?  External bases match by raw name."""
        stack = list(self.bases(cfq))
        seen: set[str] = set()
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            if base.rpartition(".")[2] == tail:
                return True
            stack.extend(self.bases(base))
        return False

    def program_classes(self) -> list[str]:
        """Every class deriving (by name) from ``PICProgram`` — plus the
        abstract base itself when it is in the project."""
        out = [
            cfq
            for cfq in sorted(self.classes)
            if cfq.rpartition(".")[2] == "PICProgram"
            or self.has_base_tail(cfq, "PICProgram")
        ]
        return out

    # -- dispatch ------------------------------------------------------

    def own_method(self, cfq: str, name: str) -> str | None:
        info = self.classes.get(cfq)
        if info is None:
            return None
        return info[2]["methods"].get(name)

    def inherited_method(self, cfq: str, name: str) -> str | None:
        """Nearest definition of ``name`` on ``cfq`` or an ancestor."""
        for cls in self.ancestors(cfq):
            fid = self.own_method(cls, name)
            if fid is not None:
                return fid
        return None

    def method_candidates(self, cfq: str, name: str) -> list[str]:
        """All concrete targets of ``obj.name()`` for ``obj: cfq``:
        the inherited definition plus every subclass override."""
        out: list[str] = []
        fid = self.inherited_method(cfq, name)
        if fid is not None:
            out.append(fid)
        for sub in sorted(self.descendants(cfq)):
            sub_fid = self.own_method(sub, name)
            if sub_fid is not None and sub_fid not in out:
                out.append(sub_fid)
        return out

    def attr_type(self, cfq: str, attr: str) -> str | None:
        """Resolved class of ``self.<attr>`` inside ``cfq`` methods."""
        for cls in self.ancestors(cfq):
            raw = self.classes[cls][2]["attr_types"].get(attr)
            if raw is not None:
                return self.resolve_class(raw) or raw
        return None

    def class_of_method(self, fid: str) -> str | None:
        fn = self.function_ir.get(fid)
        if fn is None or fn["class"] is None:
            return None
        modkey = fid.split("::", 1)[0]
        return f"{modkey}.{fn['class']}"

    def is_substrate_class(self, cfq: str | None) -> bool:
        if cfq is None:
            return False
        if cfq.rpartition(".")[2] in SUBSTRATE_CLASS_TAILS:
            return True
        return any(
            self.has_base_tail(cfq, tail) for tail in SUBSTRATE_CLASS_TAILS
        )
