"""Command-line interface: ``python -m repro.lint`` / ``pic-lint``.

Exit codes: 0 clean (or all findings baselined), 1 new findings,
2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import load_baseline, split_by_baseline, write_baseline
from repro.lint.cache import DEFAULT_CACHE_NAME
from repro.lint.engine import run_lint
from repro.lint.rules import Rule, all_rules, rules_by_id
from repro.lint.sarif import to_sarif

JSON_SCHEMA_VERSION = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pic-lint",
        description=(
            "Static analysis for simulator invariants: determinism, "
            "callback purity/picklability, byte accounting, cross-partition "
            "aliasing and simulated-traffic integrity."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files or directories to lint (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache-file",
        metavar="FILE",
        default=None,
        help=f"incremental cache location (default: ./{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print files-parsed/cache-hit/timing statistics to stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        nargs="?",
        const="",
        default=None,
        help="print a rule's doc, invariant family and a minimal "
        "bad/good example pair, then exit; with no RULE, list every "
        "rule sorted by ID with its one-line doc",
    )
    return parser


def _parse_rule_ids(raw: str, parser: argparse.ArgumentParser) -> set[str]:
    known = rules_by_id()
    ids = {part.strip().upper() for part in raw.split(",") if part.strip()}
    unknown = ids - known.keys()
    if unknown:
        parser.error(
            f"unknown rule ID(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return ids


def _active_rules(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> list[Rule]:
    rules = all_rules()
    if args.select:
        selected = _parse_rule_ids(args.select, parser)
        rules = [r for r in rules if r.rule_id in selected]
    if args.ignore:
        ignored = _parse_rule_ids(args.ignore, parser)
        rules = [r for r in rules if r.rule_id not in ignored]
    return rules


def _emit(text: str, output: str | None) -> None:
    if output is None:
        print(text)
    else:
        Path(output).write_text(text + "\n", encoding="utf-8")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    if args.explain is not None:
        from repro.lint.examples import explain
        from repro.lint.rules import family_of

        if not args.explain.strip():
            for rule in all_rules():
                print(
                    f"{rule.rule_id}  [{family_of(rule.rule_id)}]  "
                    f"{rule.summary}"
                )
            return 0
        text = explain(args.explain.strip().upper())
        if text is None:
            known = ", ".join(sorted(rules_by_id()))
            print(
                f"pic-lint: unknown rule {args.explain!r} (known: {known})",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0

    cache_path: str | None
    if args.no_cache:
        cache_path = None
    else:
        cache_path = args.cache_file or DEFAULT_CACHE_NAME

    try:
        run = run_lint(
            args.paths, rules=_active_rules(args, parser), cache_path=cache_path
        )
    except FileNotFoundError as exc:
        print(f"pic-lint: {exc}", file=sys.stderr)
        return 2
    findings, errors = run.findings, run.errors

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), findings)
        print(
            f"pic-lint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0 if not errors else 2

    baselined_count = 0
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"pic-lint: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        findings, baselined = split_by_baseline(findings, baseline)
        baselined_count = len(baselined)

    if args.format == "sarif":
        _emit(json.dumps(to_sarif(findings, errors), indent=2), args.output)
    elif args.format == "json":
        counts = Counter(f.rule for f in findings)
        payload = {
            "version": JSON_SCHEMA_VERSION,
            "files_checked": run.files_checked,
            "findings": [f.to_json() for f in findings],
            "counts": dict(sorted(counts.items())),
            "total": len(findings),
            "baselined": baselined_count,
            "errors": errors,
        }
        _emit(json.dumps(payload, indent=2), args.output)
    else:
        lines = [f.render() for f in findings]
        noun = "finding" if len(findings) == 1 else "findings"
        tail = f"{len(findings)} {noun} in {run.files_checked} files"
        if baselined_count:
            tail += f" ({baselined_count} baselined)"
        _emit("\n".join(lines + [tail]), args.output)

    if args.stats:
        print(
            "pic-lint: stats: "
            f"files={run.files_checked} "
            f"parsed={run.stats.get('files_parsed', 0)} "
            f"cache_hits={run.stats.get('cache_hits', 0)} "
            f"elapsed={run.stats.get('elapsed_s', 0.0):.3f}s",
            file=sys.stderr,
        )

    for err in errors:
        print(f"pic-lint: error: {err}", file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0
