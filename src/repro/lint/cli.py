"""Command-line interface: ``python -m repro.lint`` / ``pic-lint``.

Exit codes: 0 clean, 1 findings, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Sequence

from repro.lint.engine import lint_paths
from repro.lint.rules import Rule, all_rules, rules_by_id

JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pic-lint",
        description=(
            "Static analysis for simulator invariants: determinism, "
            "callback purity/picklability, and byte accounting."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files or directories to lint (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _parse_rule_ids(raw: str, parser: argparse.ArgumentParser) -> set[str]:
    known = rules_by_id()
    ids = {part.strip().upper() for part in raw.split(",") if part.strip()}
    unknown = ids - known.keys()
    if unknown:
        parser.error(
            f"unknown rule ID(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return ids


def _active_rules(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> list[Rule]:
    rules = all_rules()
    if args.select:
        selected = _parse_rule_ids(args.select, parser)
        rules = [r for r in rules if r.rule_id in selected]
    if args.ignore:
        ignored = _parse_rule_ids(args.ignore, parser)
        rules = [r for r in rules if r.rule_id not in ignored]
    return rules


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    try:
        findings, errors, files_checked = lint_paths(
            args.paths, rules=_active_rules(args, parser)
        )
    except FileNotFoundError as exc:
        print(f"pic-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        counts = Counter(f.rule for f in findings)
        payload = {
            "version": JSON_SCHEMA_VERSION,
            "files_checked": files_checked,
            "findings": [f.to_json() for f in findings],
            "counts": dict(sorted(counts.items())),
            "total": len(findings),
            "errors": errors,
        }
        print(json.dumps(payload, indent=2))
    else:
        for f in findings:
            print(f.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} in {files_checked} files")

    for err in errors:
        print(f"pic-lint: error: {err}", file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0
