"""File collection and rule execution."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.model import Finding, LintParseError
from repro.lint.module import LintModule
from repro.lint.noqa import filter_findings, suppressions
from repro.lint.rules import Rule, all_rules

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", ".eggs", "build", "dist"})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        elif path.suffix == ".py" or path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def lint_source(
    source: str, path: str = "<memory>", rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one source string; noqa suppressions are honoured."""
    module = LintModule(path, source)
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check(module))
    findings = filter_findings(findings, suppressions(path, source))
    return sorted(findings)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintParseError(str(p), f"cannot read: {exc}")
    return lint_source(source, path=str(p), rules=rules)


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> tuple[list[Finding], list[str], int]:
    """Lint files/directories.

    Returns ``(findings, errors, files_checked)`` where ``errors`` are
    human-readable messages for files that could not be read or parsed.
    """
    findings: list[Finding] = []
    errors: list[str] = []
    files = iter_python_files(paths)
    for file in files:
        try:
            findings.extend(lint_file(file, rules=rules))
        except LintParseError as exc:
            errors.append(str(exc))
    return sorted(findings), errors, len(files)
