"""File collection, incremental caching and rule execution.

The engine reads each file's bytes exactly once.  Per-file work (AST
parse, per-file rules, noqa tokenization, IR lowering) is skipped for
files whose content hash matches the on-disk cache; whole-program
analysis always re-runs, but from the cached IRs — never the ASTs —
so a warm re-lint of an unchanged tree does no parsing at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.lint.cache import (
    LintCache,
    cache_salt,
    content_hash,
    findings_from_entry,
    suppressions_from_entry,
)
from repro.lint.model import Finding, LintParseError
from repro.lint.module import LintModule
from repro.lint.noqa import filter_findings
from repro.lint.project.analysis import ProjectAnalysis
from repro.lint.project.graph import (
    module_name_for_path,
    module_name_for_virtual_path,
)
from repro.lint.project.ir import build_module_ir
from repro.lint.rules import ProjectRule, Rule, all_rules

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", ".eggs", "build", "dist"})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        elif path.suffix == ".py" or path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


@dataclass
class LintRun:
    """Everything one engine invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_checked: int = 0
    stats: dict[str, float] = field(default_factory=dict)


def _split_rules(rules: Sequence[Rule] | None) -> tuple[list[Rule], list[ProjectRule]]:
    active = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    return file_rules, project_rules


def _check_module(module: LintModule, file_rules: Sequence[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in file_rules:
        findings.extend(rule.check(module))
    return findings


def _project_findings(
    irs: Sequence[dict], project_rules: Sequence[ProjectRule]
) -> list[Finding]:
    if not project_rules or not irs:
        return []
    analysis = ProjectAnalysis(irs)
    findings: list[Finding] = []
    for rule in project_rules:
        findings.extend(rule.check_project(analysis))
    return findings


def run_lint(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    cache_path: str | Path | None = None,
) -> LintRun:
    """Lint files/directories with optional incremental caching."""
    started = time.perf_counter()  # pic: noqa: PIC001 — host-side lint timing
    file_rules, project_rules = _split_rules(rules)
    run = LintRun()
    files = iter_python_files(paths)
    run.files_checked = len(files)

    cache: LintCache | None = None
    if cache_path is not None:
        # Project rules never cache findings, but their ids still salt
        # the cache: adding a whole-program rule must not replay entries
        # whose noqa suppressions were computed without it.
        salt = cache_salt(
            [r.rule_id for r in file_rules] + [r.rule_id for r in project_rules]
        )
        cache = LintCache(Path(cache_path), salt)

    irs: list[dict] = []
    suppressions_by_path: dict[str, Mapping[int, frozenset[str] | None]] = {}
    raw_findings: list[Finding] = []
    parsed = 0
    cache_hits = 0

    for file in files:
        key = str(file)
        try:
            data = file.read_bytes()
        except OSError as exc:
            run.errors.append(f"{key}: cannot read: {exc}")
            continue
        digest = content_hash(data)

        entry = cache.lookup(key, digest) if cache is not None else None
        if entry is not None:
            cache_hits += 1
            if "error" in entry:
                run.errors.append(entry["error"])
                continue
            raw_findings.extend(findings_from_entry(entry))
            suppressions_by_path[key] = suppressions_from_entry(entry)
            irs.append(entry["ir"])
            continue

        try:
            module = LintModule.from_bytes(key, data)
            suppressions = module.suppressions
        except LintParseError as exc:
            run.errors.append(str(exc))
            if cache is not None:
                cache.store_error(key, digest, str(exc))
            continue
        parsed += 1
        module_name, is_package = module_name_for_path(file)
        ir = build_module_ir(module.tree, key, module_name, is_package)
        file_findings = _check_module(module, file_rules)
        raw_findings.extend(file_findings)
        suppressions_by_path[key] = suppressions
        irs.append(ir)
        if cache is not None:
            cache.store_ok(key, digest, file_findings, suppressions, ir)

    raw_findings.extend(_project_findings(irs, project_rules))

    kept: list[Finding] = []
    for finding in raw_findings:
        suppressed = suppressions_by_path.get(finding.path, {})
        kept.extend(filter_findings([finding], suppressed))
    run.findings = sorted(kept)

    if cache is not None:
        cache.prune({str(f) for f in files})
        cache.save()

    run.stats = {
        "files_parsed": parsed,
        "cache_hits": cache_hits,
        "elapsed_s": time.perf_counter() - started,  # pic: noqa: PIC001
    }
    return run


def lint_sources(
    sources: Mapping[str, str], rules: Sequence[Rule] | None = None
) -> tuple[list[Finding], list[str]]:
    """Lint an in-memory tree ``{path: source}`` (tests, fixtures).

    Paths are virtual: every directory component is treated as a
    package for module naming, so multi-file call-graph fixtures do not
    need ``__init__.py`` stubs.
    """
    file_rules, project_rules = _split_rules(rules)
    findings: list[Finding] = []
    errors: list[str] = []
    irs: list[dict] = []
    suppressions_by_path: dict[str, Mapping[int, frozenset[str] | None]] = {}
    for path in sorted(sources):
        try:
            module = LintModule(path, sources[path])
            suppressions = module.suppressions
        except LintParseError as exc:
            errors.append(str(exc))
            continue
        module_name, is_package = module_name_for_virtual_path(path)
        irs.append(build_module_ir(module.tree, path, module_name, is_package))
        suppressions_by_path[path] = suppressions
        findings.extend(_check_module(module, file_rules))
    findings.extend(_project_findings(irs, project_rules))
    kept: list[Finding] = []
    for finding in findings:
        kept.extend(
            filter_findings([finding], suppressions_by_path.get(finding.path, {}))
        )
    return sorted(kept), errors


def lint_source(
    source: str, path: str = "<memory>", rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one source string; noqa suppressions are honoured."""
    findings, errors = lint_sources({path: source}, rules=rules)
    if errors:
        raise LintParseError(path, errors[0].split(": ", 1)[-1])
    return findings


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    try:
        data = p.read_bytes()
    except OSError as exc:
        raise LintParseError(str(p), f"cannot read: {exc}")
    module = LintModule.from_bytes(str(p), data)
    file_rules, project_rules = _split_rules(rules)
    module_name, is_package = module_name_for_path(p)
    ir = build_module_ir(module.tree, str(p), module_name, is_package)
    findings = _check_module(module, file_rules)
    findings.extend(_project_findings([ir], project_rules))
    return sorted(filter_findings(findings, module.suppressions))


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> tuple[list[Finding], list[str], int]:
    """Lint files/directories.

    Returns ``(findings, errors, files_checked)`` where ``errors`` are
    human-readable messages for files that could not be read or parsed.
    Thin compatibility wrapper over :func:`run_lint`.
    """
    run = run_lint(paths, rules=rules)
    return run.findings, run.errors, run.files_checked
