"""Rule base classes and the registry of shipped rules.

Each rule family maps to one simulator invariant (see DESIGN.md §7/§9):

* ``PIC0xx`` — determinism of replay;
* ``PIC1xx`` — purity/picklability of user callbacks;
* ``PIC2xx`` — bytes-conserving flow accounting;
* ``PIC3xx`` — cross-partition aliasing (whole-program);
* ``PIC4xx`` — simulation integrity (whole-program);
* ``PIC5xx`` — resource lifecycle typestate (whole-program);
* ``PIC6xx`` — quantity-unit taint (whole-program);
* ``PIC7xx`` — concurrency interference (whole-program).

Per-file rules subclass :class:`Rule` and see one :class:`LintModule`
at a time.  Whole-program rules subclass :class:`ProjectRule` and see
the converged :class:`~repro.lint.project.analysis.ProjectAnalysis`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator

from repro.lint.model import Finding

if TYPE_CHECKING:
    from repro.lint.module import LintModule
    from repro.lint.project.analysis import ProjectAnalysis


class Rule(abc.ABC):
    """One machine-checked invariant with a stable ID."""

    #: Stable identifier, e.g. ``PIC001``.
    rule_id: str = ""
    #: One-line description shown by ``--list-rules`` and in README.
    summary: str = ""

    @abc.abstractmethod
    def check(self, module: "LintModule") -> Iterator[Finding]:
        """Yield findings for ``module``."""

    def finding(self, module: "LintModule", node: object, message: str) -> Finding:
        """Anchor a finding for this rule at ``node``."""
        return module.finding(self.rule_id, node, message)  # type: ignore[arg-type]


class ProjectRule(Rule):
    """A rule that needs the whole-program analysis, not one module."""

    def check(self, module: "LintModule") -> Iterator[Finding]:
        return iter(())

    @abc.abstractmethod
    def check_project(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        """Yield findings over the converged project summaries."""


def all_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, in ID order."""
    from repro.lint.rules.aliasing import (
        CallbackRecordMutationRule,
        ColumnViewRule,
        MergeMutationRule,
        PartitionAliasingRule,
    )
    from repro.lint.rules.determinism import (
        SetIterationOrderRule,
        UnseededRandomRule,
        WallClockRule,
    )
    from repro.lint.rules.lifecycle import (
        DoubleReleaseRule,
        ResourceLeakRule,
        UseAfterReleaseRule,
    )
    from repro.lint.rules.concurrency import (
        AggregateBypassRule,
        CrossJobWriteRule,
        TieOrderConflictRule,
        UnorderedScheduleRule,
    )
    from repro.lint.rules.purity import CallbackPurityRule, TaskSpecPicklabilityRule
    from repro.lint.rules.simulation import (
        ReentrantHandlerMutationRule,
        TrafficBypassRule,
    )
    from repro.lint.rules.sizing import GetsizeofRule, RawLenByteCountRule
    from repro.lint.rules.units import SimSinkTaintRule, UnitMixRule

    rules: list[Rule] = [
        WallClockRule(),
        UnseededRandomRule(),
        SetIterationOrderRule(),
        TaskSpecPicklabilityRule(),
        CallbackPurityRule(),
        GetsizeofRule(),
        RawLenByteCountRule(),
        PartitionAliasingRule(),
        MergeMutationRule(),
        CallbackRecordMutationRule(),
        ColumnViewRule(),
        TrafficBypassRule(),
        ReentrantHandlerMutationRule(),
        ResourceLeakRule(),
        DoubleReleaseRule(),
        UseAfterReleaseRule(),
        UnitMixRule(),
        SimSinkTaintRule(),
        CrossJobWriteRule(),
        TieOrderConflictRule(),
        AggregateBypassRule(),
        UnorderedScheduleRule(),
    ]
    return sorted(rules, key=lambda r: r.rule_id)


#: Rule-ID prefix -> invariant family name (used by ``--explain``).
FAMILIES = {
    "PIC0": "determinism of replay",
    "PIC1": "purity/picklability of user callbacks",
    "PIC2": "bytes-conserving flow accounting",
    "PIC3": "cross-partition aliasing",
    "PIC4": "simulation integrity",
    "PIC5": "resource lifecycle typestate",
    "PIC6": "quantity-unit taint",
    "PIC7": "concurrency interference",
}


def family_of(rule_id: str) -> str:
    """Human name of the invariant family ``rule_id`` belongs to."""
    return FAMILIES.get(rule_id[:4], "unknown")


def rules_by_id() -> dict[str, Rule]:
    """Map rule IDs to rule instances."""
    return {rule.rule_id: rule for rule in all_rules()}
