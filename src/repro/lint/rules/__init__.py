"""Rule base class and the registry of shipped rules.

Each rule family maps to one simulator invariant (see DESIGN.md §7):

* ``PIC0xx`` — determinism of replay;
* ``PIC1xx`` — purity/picklability of user callbacks;
* ``PIC2xx`` — bytes-conserving flow accounting.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator

from repro.lint.model import Finding

if TYPE_CHECKING:
    from repro.lint.module import LintModule


class Rule(abc.ABC):
    """One machine-checked invariant with a stable ID."""

    #: Stable identifier, e.g. ``PIC001``.
    rule_id: str = ""
    #: One-line description shown by ``--list-rules`` and in README.
    summary: str = ""

    @abc.abstractmethod
    def check(self, module: "LintModule") -> Iterator[Finding]:
        """Yield findings for ``module``."""

    def finding(self, module: "LintModule", node: object, message: str) -> Finding:
        """Anchor a finding for this rule at ``node``."""
        return module.finding(self.rule_id, node, message)  # type: ignore[arg-type]


def all_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, in ID order."""
    from repro.lint.rules.determinism import (
        SetIterationOrderRule,
        UnseededRandomRule,
        WallClockRule,
    )
    from repro.lint.rules.purity import CallbackPurityRule, TaskSpecPicklabilityRule
    from repro.lint.rules.sizing import GetsizeofRule, RawLenByteCountRule

    rules: list[Rule] = [
        WallClockRule(),
        UnseededRandomRule(),
        SetIterationOrderRule(),
        TaskSpecPicklabilityRule(),
        CallbackPurityRule(),
        GetsizeofRule(),
        RawLenByteCountRule(),
    ]
    return sorted(rules, key=lambda r: r.rule_id)


def rules_by_id() -> dict[str, Rule]:
    """Map rule IDs to rule instances."""
    return {rule.rule_id: rule for rule in all_rules()}
