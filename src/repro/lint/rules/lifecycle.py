"""PIC5xx: resource-lifecycle typestate (whole-program).

The zero-copy substrate (PR 5) moved record batches into POSIX shared
memory: a ``SharedMemory`` block that is created but never
``close()``d *and* ``unlink()``ed outlives the process and eats
``/dev/shm`` until a reboot.  Pools must be ``shutdown()``, files and
mmaps ``close()``d.  These rules read the converged typestate facts
from :mod:`repro.lint.project.typestate`, which walks the
exception-edge IR (schema v2) with acquire/release protocols:

* **PIC501** — a resource can leak: an exception between acquisition
  and release escapes the function with the resource still live, or
  the function simply never releases it on the normal path.
* **PIC502** — double release: a release method is called again on a
  resource that every path has already released.
* **PIC503** — use after release: a non-release method or data
  attribute is touched after the release is certain.

``with`` blocks, ``try``/``finally`` release, releasing the resource
inside a callee (interprocedural release summaries), and handing the
resource off (return / store / argument escape) all count as handled
and stay silent.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.model import Finding
from repro.lint.project.analysis import ProjectAnalysis
from repro.lint.rules import ProjectRule


def _findings(
    project: "ProjectAnalysis", rule_id: str
) -> Iterator[Finding]:
    for rule, fid, line, col, message in project.typestate().findings:
        if rule != rule_id:
            continue
        yield Finding(
            path=project.graph.fid_path[fid],
            line=line,
            col=col + 1,
            rule=rule_id,
            message=message,
        )


class ResourceLeakRule(ProjectRule):
    """PIC501: acquired resource not released on every path."""

    rule_id = "PIC501"
    summary = "resource (shm block, pool, file, mmap) can leak on an exception path"

    def check_project(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)


class DoubleReleaseRule(ProjectRule):
    """PIC502: resource released twice."""

    rule_id = "PIC502"
    summary = "release method called again on an already-released resource"

    def check_project(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)


class UseAfterReleaseRule(ProjectRule):
    """PIC503: resource used after release."""

    rule_id = "PIC503"
    summary = "resource used after it was released on every path"

    def check_project(self, project: "ProjectAnalysis") -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)
