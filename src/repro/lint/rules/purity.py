"""Purity/picklability rules for user-supplied callbacks.

Task specs (``JobSpec`` callbacks, payloads handed to the parallel
executor) cross a process boundary under ``PIC_WORKERS>1``.  Closures
and lambdas cannot be pickled, so :mod:`repro.parallel.executor`
silently falls back to in-process execution — correct but sequential.
And because the program object is pickled *to* the worker, instance
state mutated inside a task-side callback never comes back.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.model import Finding
from repro.lint.module import LintModule, bare_name, tail_name
from repro.lint.rules import Rule

#: Executor-like receivers for ``.map``/``.map_or_none``/``.submit``.
_EXECUTOR_RECEIVER = re.compile(r"executor|pool", re.IGNORECASE)
_EXECUTOR_METHODS = frozenset({"map", "map_or_none", "submit"})


class TaskSpecPicklabilityRule(Rule):
    """PIC101: no lambdas/nested functions as parallel task specs."""

    rule_id = "PIC101"
    summary = (
        "lambda/nested function as a task spec cannot be pickled; "
        "the pool silently runs it in-process"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        nested = _nested_function_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for value in self._task_spec_args(module, node):
                if isinstance(value, ast.Lambda):
                    yield self._finding(module, value, "a lambda")
                elif isinstance(value, ast.Name) and value.id in nested:
                    yield self._finding(
                        module, value, f"nested function {value.id!r}"
                    )

    def _task_spec_args(
        self, module: LintModule, call: ast.Call
    ) -> list[ast.expr]:
        """Argument expressions of ``call`` that act as task specs."""
        if tail_name(call.func) == "JobSpec":
            return [*call.args, *(kw.value for kw in call.keywords)]
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _EXECUTOR_METHODS
        ):
            base = call.func.value
            base_name = bare_name(base)
            resolved = module.resolve(base)
            if (base_name is not None and _EXECUTOR_RECEIVER.search(base_name)) or (
                resolved is not None and resolved.startswith("repro.parallel")
            ):
                return list(call.args[:1])
        return []

    def _finding(self, module: LintModule, node: ast.AST, what: str) -> Finding:
        return self.finding(
            module,
            node,
            f"{what} used as a task spec cannot cross the process boundary; "
            "repro.parallel falls back to in-process execution. Use a "
            "module-level function, or suppress if the serial fallback is "
            "intended.",
        )


def _nested_function_names(module: LintModule) -> frozenset[str]:
    """Names of functions defined inside another function."""
    names = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        parent = module.parent(node)
        while parent is not None and not isinstance(
            parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)
        ):
            parent = module.parent(parent)
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return frozenset(names)


#: Callbacks that execute inside a (possibly out-of-process) task.
TASK_SIDE_CALLBACKS = frozenset(
    {"map", "batch_map", "reduce", "batch_reduce", "combine", "merge_element"}
)
#: Callbacks that run in the driver but must still be I/O-free: they are
#: re-invoked on replay and their effects are not part of any metric.
DRIVER_SIDE_CALLBACKS = frozenset(
    {
        "build_model",
        "converged",
        "be_converged",
        "topoff_converged",
        "partition",
        "merge",
        "initial_model",
        "owned_model_records",
    }
)

_IO_BUILTINS = frozenset({"open", "input", "print"})
_IO_PREFIXES = (
    "os.environ",
    "os.putenv",
    "os.system",
    "os.popen",
    "os.remove",
    "os.unlink",
    "os.rename",
    "os.makedirs",
    "os.mkdir",
    "subprocess.",
    "shutil.",
    "socket.",
    "sys.stdout",
    "sys.stderr",
    "logging.",
)


class CallbackPurityRule(Rule):
    """PIC102: PICProgram callbacks must be pure (no I/O, no hidden state)."""

    rule_id = "PIC102"
    summary = "I/O or state mutation inside a PICProgram callback body"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for cls in _program_classes(module):
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                name = method.name
                if name not in TASK_SIDE_CALLBACKS | DRIVER_SIDE_CALLBACKS:
                    continue
                yield from self._check_callback(
                    module, method, task_side=name in TASK_SIDE_CALLBACKS
                )

    def _check_callback(
        self,
        module: LintModule,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        task_side: bool,
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.finding(
                    module,
                    node,
                    f"'{'global' if isinstance(node, ast.Global) else 'nonlocal'}' "
                    f"inside {method.name}(): callbacks must not write state "
                    "outside the task; emit records through the context instead.",
                )
            elif isinstance(node, ast.Call):
                name = bare_name(node.func)
                resolved = module.resolve(node.func)
                if name in _IO_BUILTINS:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() inside {method.name}(): callbacks run inside "
                        "the framework loop (possibly in a worker process) and "
                        "must not perform I/O.",
                    )
                elif resolved is not None and resolved.startswith(_IO_PREFIXES):
                    yield self.finding(
                        module,
                        node,
                        f"{resolved}(...) inside {method.name}(): callbacks must "
                        "not touch the host environment or perform I/O.",
                    )
            elif task_side and isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
            ):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if _roots_at_self(target):
                        yield self.finding(
                            module,
                            target,
                            f"assignment to instance state inside {method.name}() "
                            "is lost when the task runs in a worker process; "
                            "return results via emitted records or the model.",
                        )


def _roots_at_self(target: ast.expr) -> bool:
    """True for ``self.x``, ``self.x[k]``, ``self.x.y`` assignment targets."""
    node = target
    saw_attribute = False
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            saw_attribute = True
        node = node.value
    return saw_attribute and isinstance(node, ast.Name) and node.id == "self"


def _program_classes(module: LintModule) -> list[ast.ClassDef]:
    """Classes that (transitively, within this module) extend PICProgram."""
    classes = {
        node.name: node
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef)
    }
    cache: dict[str, bool] = {}

    def is_program(name: str, seen: frozenset[str]) -> bool:
        if name in cache:
            return cache[name]
        if name in seen or name not in classes:
            return False
        bases = [tail_name(b) for b in classes[name].bases]
        result = "PICProgram" in bases or any(
            b is not None and is_program(b, seen | {name}) for b in bases
        )
        cache[name] = result
        return result

    return [cls for name, cls in classes.items() if is_program(name, frozenset())]
