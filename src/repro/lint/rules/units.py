"""PIC6xx: quantity-unit taint (whole-program).

Simulated seconds, wall-clock seconds, simulated wire bytes and record
counts are all plain ``float``/``int`` to Python — mixing them is the
classic way to quietly wreck a result table ("speedup" computed from
one simulated and one measured number).  These rules read the
converged taint facts from :mod:`repro.lint.project.units`:

* **PIC601** — cross-unit arithmetic/comparison: ``+``/``-``/ordering
  between quantities whose units conflict.  Multiplying and dividing
  are fine (that is how rates are built), and byte totals may be
  assembled from ``len(...)`` pieces, so those pairs stay silent.
* **PIC602** — wrong unit reaching a simulated sink: a wall-clock (or
  otherwise mis-united) value flowing into ``sim.schedule(delay)``,
  ``cluster.transfer(..., nbytes, ...)``, ``meter.record(...)`` or a
  project function that forwards its parameter there.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.model import Finding
from repro.lint.project.analysis import ProjectAnalysis
from repro.lint.rules import ProjectRule


def _findings(project: ProjectAnalysis, rule_id: str) -> Iterator[Finding]:
    for rule, fid, line, col, message in project.unit_taint().findings:
        if rule != rule_id:
            continue
        yield Finding(
            path=project.graph.fid_path[fid],
            line=line,
            col=col + 1,
            rule=rule_id,
            message=message,
        )


class UnitMixRule(ProjectRule):
    """PIC601: arithmetic/comparison across conflicting units."""

    rule_id = "PIC601"
    summary = "adds/subtracts/compares quantities with conflicting units"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)


class SimSinkTaintRule(ProjectRule):
    """PIC602: mis-united value reaches a simulated-time/bytes sink."""

    rule_id = "PIC602"
    summary = "wall-clock or mis-united quantity flows into a simulated metric"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)
