"""PIC7xx: concurrency interference (whole-program).

With many jobs multiplexed through one event queue (PR 8), every
shared structure is a potential schedule-order dependence.  These
rules read the converged effect sets and order-taint facts from
:mod:`repro.lint.project.interference`; the ``PIC_SANITIZE`` schedule
sanitizer is the dynamic counterpart that shakes the same bugs out at
runtime.

* **PIC701** — handler-reachable code writes another job's state.
* **PIC702** — two co-schedulable handlers overlap on a shared
  location with no canonical tiebreak (the PR 8 timer-bug shape).
* **PIC703** — a scheduler/runner aggregate mutated from an app
  callback instead of through the owner's serialization-point API.
* **PIC704** — a nondeterministically-ordered iterable (set,
  id()-keyed dict) flows into a scheduling/submission order
  (whole-program extension of the per-file PIC003).
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.model import Finding
from repro.lint.project.analysis import ProjectAnalysis
from repro.lint.rules import ProjectRule


def _findings(project: ProjectAnalysis, rule_id: str) -> Iterator[Finding]:
    for rule, fid, line, col, message in project.interference().findings:
        if rule != rule_id:
            continue
        yield Finding(
            path=project.graph.fid_path[fid],
            line=line,
            col=col + 1,
            rule=rule_id,
            message=message,
        )


class CrossJobWriteRule(ProjectRule):
    """PIC701: handler mutates job-scoped state of a foreign job."""

    rule_id = "PIC701"
    summary = "event handler writes another job's state"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)


class TieOrderConflictRule(ProjectRule):
    """PIC702: same-timestamp handlers conflict on a shared location."""

    rule_id = "PIC702"
    summary = "co-schedulable handlers overlap on shared state with no tiebreak"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)


class AggregateBypassRule(ProjectRule):
    """PIC703: shared aggregate mutated outside its serialization point."""

    rule_id = "PIC703"
    summary = "scheduler aggregate mutated from a callback, not its owner API"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)


class UnorderedScheduleRule(ProjectRule):
    """PIC704: unordered iterable becomes a scheduling/submission order."""

    rule_id = "PIC704"
    summary = "set/id()-ordered iterable flows into a scheduling order"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        yield from _findings(project, self.rule_id)
