"""Byte-accounting rules.

The paper's Table II / Figure 2 numbers are *serialized* byte counts.
``repro.util.sizing`` implements the wire-format sizing rules and the
``Split``/``SubProblem`` caches carry ``.nbytes``; ``len()`` counts
records or characters and ``sys.getsizeof`` measures CPython object
headers — both silently corrupt the traffic accounting if they reach a
flow payload.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Finding
from repro.lint.module import LintModule, bare_name, tail_name
from repro.lint.rules import Rule


class GetsizeofRule(Rule):
    """PIC201: ``sys.getsizeof`` is never a wire size."""

    rule_id = "PIC201"
    summary = "sys.getsizeof measures CPython headers, not wire bytes; use util.sizing"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and module.resolve(node.func) == "sys.getsizeof":
                yield self.finding(
                    module,
                    node,
                    "sys.getsizeof() is dominated by CPython object headers; "
                    "size records with repro.util.sizing.sizeof_records()/"
                    "sizeof_value() or a cached .nbytes.",
                )


#: Calls whose byte-count parameter is positional: name -> arg index.
_BYTE_POSITIONAL = {"start_flow": 2, "transfer": 2, "transfer_time": 2}
#: Keyword names that always carry serialized byte counts.
_BYTE_KWARGS = frozenset({"nbytes", "size_bytes"})
#: Constructors whose ``size`` keyword is a byte count.
_BYTE_SIZE_CTORS = frozenset({"Flow"})


class RawLenByteCountRule(Rule):
    """PIC202: ``len()`` where a serialized byte count is required."""

    rule_id = "PIC202"
    summary = "len()/getsizeof passed as a flow byte count; use sizeof_records/.nbytes"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fname = tail_name(node.func)
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                if kw.arg in _BYTE_KWARGS or (
                    fname in _BYTE_SIZE_CTORS and kw.arg == "size"
                ):
                    if self._is_raw_size(module, kw.value):
                        yield self._finding(module, kw.value, f"{fname}({kw.arg}=...)")
            if fname in _BYTE_POSITIONAL:
                idx = _BYTE_POSITIONAL[fname]
                if len(node.args) > idx and self._is_raw_size(module, node.args[idx]):
                    yield self._finding(
                        module, node.args[idx], f"byte argument of {fname}()"
                    )

    @staticmethod
    def _is_raw_size(module: LintModule, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        return (
            bare_name(value.func) == "len"
            or module.resolve(value.func) == "sys.getsizeof"
        )

    def _finding(self, module: LintModule, node: ast.AST, where: str) -> Finding:
        return self.finding(
            module,
            node,
            f"raw len()/getsizeof used for the {where}: that counts records or "
            "characters, not serialized bytes. Use repro.util.sizing."
            "sizeof_records()/sizeof_value() or the cached .nbytes.",
        )
