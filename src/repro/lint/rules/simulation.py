"""PIC4xx: simulation integrity (whole-program).

The traffic numbers the repo reports (Table II / Figure 2) are only as
honest as the rule that *every* inter-node byte passes through
``FlowNetwork``.  The classic way to break that accidentally is to
invoke a flow-completion continuation synchronously — the payload
"arrives" with zero simulated latency and zero metered bytes (PIC401).
The classic way to corrupt the event loop is an event handler reaching
into another component's private state mid-dispatch (PIC402).

Both rules are whole-program: the continuation set is collected at
every registration site (``cluster.transfer(..., cb)``, batched
request lists, ``dfs.write(on_complete=...)``, factory-returned
closures, parameters forwarded into registrars), and handler
reachability is the call-graph closure of everything registered with
the simulator.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.model import Finding
from repro.lint.project.analysis import ProjectAnalysis
from repro.lint.rules import ProjectRule


class TrafficBypassRule(ProjectRule):
    """PIC401: a registered flow continuation is invoked synchronously."""

    rule_id = "PIC401"
    summary = "flow-completion callback invoked directly, bypassing FlowNetwork"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        continuations = project.flow_continuations()
        if not continuations:
            return
        seen: set[tuple] = set()
        for fid in sorted(project.summaries):
            summary = project.summaries[fid]
            for callee, line, col in summary.direct_calls:
                if callee not in continuations:
                    continue
                fn = project.graph.function_ir.get(callee)
                name = fn["name"] if fn else callee
                key = (project.graph.fid_path[fid], line, col, name)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    path=project.graph.fid_path[fid],
                    line=line,
                    col=col + 1,
                    rule=self.rule_id,
                    message=(
                        f"'{name}' is registered as a flow-completion "
                        "continuation but invoked synchronously here: the "
                        "payload hops nodes with zero simulated latency and "
                        "zero metered bytes. Route it through "
                        "cluster.transfer(...) or sim.schedule(...)."
                    ),
                )


class ReentrantHandlerMutationRule(ProjectRule):
    """PIC402: event handlers poke substrate internals reentrantly."""

    rule_id = "PIC402"
    summary = "event handler mutates Simulation/FlowNetwork/Cluster private state"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        reachable = project.handler_reachable()
        for fid in sorted(project.summaries):
            if fid not in reachable:
                continue
            summary = project.summaries[fid]
            for line, col, chain in summary.substrate_writes:
                yield Finding(
                    path=project.graph.fid_path[fid],
                    line=line,
                    col=col + 1,
                    rule=self.rule_id,
                    message=(
                        f"event-handler code writes '{chain}' — private "
                        "simulator state mutated during event dispatch. "
                        "Reentrant writes corrupt the event/flow bookkeeping; "
                        "go through the owner's public API (schedule, "
                        "start_flow, release...)."
                    ),
                )
