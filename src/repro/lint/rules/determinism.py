"""Determinism rules: wall-clock reads, global RNG, set-iteration order.

The simulation must replay bit-identically for any worker count and any
host (tests/integration/test_determinism.py spot-checks this; these
rules enforce it statically).  Time comes only from the event clock
(:class:`repro.cluster.events.Simulation`); randomness only from seeded
generators routed through :mod:`repro.util.rng`; and nothing may depend
on the iteration order of a hash-based set.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.model import Finding
from repro.lint.module import LintModule, bare_name, iter_scopes, walk_scope
from repro.lint.rules import Rule

#: Canonical names of host-clock reads.  Simulated components take time
#: from ``Simulation.now``; host-timing harnesses (the wall-clock perf
#: suite) are the deliberate exception and carry ``# pic: noqa: PIC001``.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` attributes that are fine: constructing seeded
#: generators, not drawing from the hidden global stream.
_SEEDABLE_NUMPY = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


class WallClockRule(Rule):
    """PIC001: simulated code must not read the host clock."""

    rule_id = "PIC001"
    summary = (
        "host clock read (time.time/perf_counter/datetime.now); "
        "use the event clock (Simulation.now)"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"{name}() reads the host clock; simulated components must "
                    "take time from the event clock (Simulation.now). "
                    "Host-timing harnesses may suppress with "
                    "'# pic: noqa: PIC001'.",
                )


class UnseededRandomRule(Rule):
    """PIC002: no draws from global (unseeded) RNG state."""

    rule_id = "PIC002"
    summary = (
        "global RNG state (random.* / np.random.*); "
        "route through repro.util.rng or a seeded Generator"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name is None:
                continue
            if name.startswith("random.") and name != "random.Random":
                yield self.finding(
                    module,
                    node,
                    f"{name}() draws from the process-global random stream; "
                    "use repro.util.rng.as_generator/spawn_rngs so replay is "
                    "deterministic for any worker count.",
                )
            elif name.startswith("numpy.random."):
                attr = name.split(".")[2]
                if attr not in _SEEDABLE_NUMPY:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() uses numpy's hidden global RNG; construct a "
                        "seeded Generator via repro.util.rng instead.",
                    )


#: Consumers whose result does not depend on element order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset", "bool"}
)
#: Wrappers that materialize the (nondeterministic) iteration order.
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


class SetIterationOrderRule(Rule):
    """PIC003: never iterate a set where order can reach simulated state."""

    rule_id = "PIC003"
    summary = "iteration over a set/frozenset feeds nondeterministic order; sort first"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for scope in iter_scopes(module.tree):
            set_names = _set_typed_names(scope)
            for node in walk_scope(scope):
                if not _is_set_expr(node, set_names):
                    continue
                parent = module.parent(node)
                if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
                    yield self._finding(module, node)
                elif isinstance(parent, ast.comprehension) and parent.iter is node:
                    yield self._finding(module, node)
                elif (
                    isinstance(parent, ast.Call)
                    and node in parent.args
                    and bare_name(parent.func) in _ORDER_SENSITIVE_WRAPPERS
                ):
                    yield self._finding(module, node)

    def _finding(self, module: LintModule, node: ast.AST) -> Finding:
        return self.finding(
            module,
            node,
            "iterating a set/frozenset yields hash order, which is not stable "
            "across runs; wrap it in sorted(...) before it can reach flow "
            "scheduling or metric accumulation.",
        )


def _is_set_expr(node: ast.AST, set_names: frozenset[str]) -> bool:
    """True when ``node`` certainly evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and bare_name(node.func) in ("set", "frozenset"):
        return True
    return (
        isinstance(node, ast.Name)
        and isinstance(node.ctx, ast.Load)
        and node.id in set_names
    )


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return bare_name(target) in ("set", "frozenset") or (
        isinstance(target, ast.Attribute) and target.attr in ("Set", "FrozenSet")
    )


def _set_typed_names(scope: ast.AST) -> frozenset[str]:
    """Names that are only ever bound to sets within ``scope``.

    Conservative: any rebinding to a non-set value (or any binding whose
    value we cannot classify, e.g. a loop target) drops the name.
    """
    verdict: dict[str, bool] = {}

    def note(name: str, is_set: bool) -> None:
        verdict[name] = verdict.get(name, True) and is_set

    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                note(arg.arg, _is_set_annotation(arg.annotation))

    for node in walk_scope(scope):
        if isinstance(node, ast.Assign):
            is_set = _is_set_expr(node.value, frozenset())
            for target in node.targets:
                name = bare_name(target)
                if name is not None:
                    note(name, is_set)
        elif isinstance(node, ast.AnnAssign):
            name = bare_name(node.target)
            if name is not None:
                note(name, _is_set_annotation(node.annotation))
        elif isinstance(node, ast.AugAssign):
            name = bare_name(node.target)
            if name is not None:
                note(name, verdict.get(name, False))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                name = bare_name(target) if isinstance(target, ast.expr) else None
                if name is not None:
                    note(name, False)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            name = bare_name(node.optional_vars)
            if name is not None:
                note(name, False)
        elif isinstance(node, ast.comprehension):
            for target in ast.walk(node.target):
                name = bare_name(target) if isinstance(target, ast.expr) else None
                if name is not None:
                    note(name, False)
    return frozenset(name for name, is_set in verdict.items() if is_set)
