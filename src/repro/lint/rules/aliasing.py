"""PIC3xx: cross-partition aliasing (whole-program).

PIC's best-effort phase is only correct if sub-problems are
*independent*: ``partition()`` must hand each sub-problem data and
model objects it owns, ``merge()`` must not scribble on the partial
models it is combining, and map/reduce callbacks must not mutate
records they received by reference (the simulator shares record lists
between "nodes" for speed — a mutation is invisible communication that
a real cluster would not deliver).

These rules read the converged alias/mutation summaries from
:mod:`repro.lint.project.analysis`; they see through local helper
functions, defensive-copy rebinds, and the library's default
``partition``/``merge`` implementations.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.model import Finding
from repro.lint.project.analysis import ProjectAnalysis, Summary
from repro.lint.rules import ProjectRule


def _method(
    project: ProjectAnalysis, cfq: str, name: str
) -> tuple[str, dict, Summary] | None:
    """(fid, function IR, summary) for ``name`` defined *on* ``cfq``."""
    fid = project.graph.own_method(cfq, name)
    if fid is None:
        return None
    fn = project.graph.function_ir.get(fid)
    summary = project.summaries.get(fid)
    if fn is None or summary is None:
        return None
    return fid, fn, summary


def _data_params(fn: dict, indices: tuple[int, ...]) -> list[str]:
    params = fn["params"]
    return [params[i] for i in indices if i < len(params)]


def _finding(
    project: ProjectAnalysis, rule_id: str, fid: str, line: int, col: int, message: str
) -> Finding:
    return Finding(
        path=project.graph.fid_path[fid],
        line=line,
        col=col + 1,
        rule=rule_id,
        message=message,
    )


class PartitionAliasingRule(ProjectRule):
    """PIC301: ``partition()`` leaks references to shared input/model."""

    rule_id = "PIC301"
    summary = "partition() returns references into the shared records/model objects"

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        for cfq in project.graph.program_classes():
            found = _method(project, cfq, "partition")
            if found is None:
                continue
            fid, fn, summary = found
            escaped = summary.ret.ids | summary.ret.contents
            for param in _data_params(fn, (1, 2)):
                atom = ("p", param, 0)
                if atom in escaped:
                    line, col = summary.ret_sites.get(atom, [fn["line"], 0])
                    yield _finding(
                        project,
                        self.rule_id,
                        fid,
                        line,
                        col,
                        f"partition() may return the shared '{param}' object "
                        "itself (or a container holding it); each sub-problem "
                        "must own its data and model — deep-copy or rebuild "
                        "(see repro.pic.partitioners.replicate_model).",
                    )


class MergeMutationRule(ProjectRule):
    """PIC302: ``merge``/``merge_element`` mutate partial models."""

    rule_id = "PIC302"
    summary = "merge()/merge_element() mutates the partial models it combines"

    _METHODS = (("merge", (1,)), ("merge_element", (2,)))

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        for cfq in project.graph.program_classes():
            for mname, indices in self._METHODS:
                found = _method(project, cfq, mname)
                if found is None:
                    continue
                fid, fn, summary = found
                for param in _data_params(fn, indices):
                    for atom, (line, col, via) in sorted(
                        summary.mutations.items()
                    ):
                        if atom[1] != param or atom[0] not in ("p", "pa"):
                            continue
                        how = (
                            "mutates" if via == "direct" else f"mutates (via {via})"
                        )
                        what = (
                            f"the '{param}' argument"
                            if atom == ("p", param, 0)
                            else f"a partial model inside '{param}'"
                        )
                        yield _finding(
                            project,
                            self.rule_id,
                            fid,
                            line,
                            col,
                            f"{mname}() {how} {what} in place; best-effort "
                            "rounds reuse the partial models, so merge must "
                            "build a fresh result (dict(models[0]), "
                            "concat_merge, average_merge...).",
                        )
                        break  # one finding per data param is enough


class CallbackRecordMutationRule(ProjectRule):
    """PIC303: map/reduce callbacks mutate records or the shared model."""

    rule_id = "PIC303"
    summary = "map/reduce callback mutates records or ctx.model received by reference"

    #: callback name -> (indices of record-bearing params, ctx index or None)
    _CALLBACKS = {
        "map": ((2, 3), 1),
        "batch_map": ((2,), 1),
        "reduce": ((2, 3), 1),
        "batch_reduce": ((2,), 1),
        "combine": ((1, 2), None),
        "combine_batch": ((1,), None),
    }

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        for cfq in project.graph.program_classes():
            for mname, (indices, ctx_index) in sorted(self._CALLBACKS.items()):
                found = _method(project, cfq, mname)
                if found is None:
                    continue
                fid, fn, summary = found
                data = set(_data_params(fn, indices))
                ctx = (
                    fn["params"][ctx_index]
                    if ctx_index is not None and ctx_index < len(fn["params"])
                    else None
                )
                seen: set[str] = set()
                for atom, (line, col, via) in sorted(summary.mutations.items()):
                    if (
                        atom[0] == "pa"
                        and atom[2] in ColumnViewRule._COLUMN_ATTRS
                    ):
                        continue  # column writes are PIC304's, with a better message
                    if atom[1] in data and atom[1] not in seen:
                        seen.add(atom[1])
                        yield _finding(
                            project,
                            self.rule_id,
                            fid,
                            line,
                            col,
                            f"{mname}() mutates the '{atom[1]}' records it "
                            "received by reference; the simulator shares "
                            "record lists between nodes, so this is invisible "
                            "cross-node communication. Copy before mutating.",
                        )
                    elif (
                        ctx is not None
                        and atom == ("pa", ctx, "model")
                        and "model" not in seen
                    ):
                        seen.add("model")
                        yield _finding(
                            project,
                            self.rule_id,
                            fid,
                            line,
                            col,
                            f"{mname}() mutates ctx.model in place; the model "
                            "object is shared across every task on a node — "
                            "emit updates and fold them in build_model() "
                            "instead.",
                        )


class ColumnViewRule(ProjectRule):
    """PIC304: ColumnBatch column views escape or are written in place.

    Columnar splits share their backing numpy arrays aggressively:
    ``slice``/``take`` return views where possible, and ``batch_map``
    hands callbacks the split's columns directly.  That is safe only as
    long as the columns are treated as immutable.  Two ways to break it:

    * ``partition()`` returns a *column attribute* of the shared
      records/model (``records.keys``, ``batch.values``...) — the
      sub-problems now share backing arrays, which is invisible
      cross-partition communication (PIC301 only catches the container
      itself escaping, not its columns);
    * a batch callback writes a column of its input batch in place
      (``records.values.fill(...)``, ``grouped.sorted_keys.sort()``) —
      the same arrays back other splits and the DFS copy of the data.

    Emitting a read-only view (k-means emits the input point matrix
    untouched) is fine and stays silent: the rule fires on attribute
    *escape from partition* and attribute *mutation*, not on emits.
    """

    rule_id = "PIC304"
    summary = "ColumnBatch column views escape partition() or are mutated by callbacks"

    #: batch callback name -> index of the batch-bearing parameter
    _BATCH_CALLBACKS = {"batch_map": 2, "batch_reduce": 2, "combine_batch": 1}
    #: attributes that are (or hold) numpy-backed columns
    _COLUMN_ATTRS = frozenset(
        {"keys", "values", "data", "slots", "sorted_keys", "sorted_values", "starts"}
    )

    def check_project(self, project: ProjectAnalysis) -> Iterator[Finding]:
        for cfq in project.graph.program_classes():
            yield from self._partition_escapes(project, cfq)
            yield from self._callback_mutations(project, cfq)

    def _partition_escapes(
        self, project: ProjectAnalysis, cfq: str
    ) -> Iterator[Finding]:
        found = _method(project, cfq, "partition")
        if found is None:
            return
        fid, fn, summary = found
        escaped = summary.ret.ids | summary.ret.contents
        for param in _data_params(fn, (1, 2)):
            for atom in sorted(a for a in escaped if a[0] == "pa"):
                if atom[1] != param or atom[2] not in self._COLUMN_ATTRS:
                    continue
                line, col = summary.ret_sites.get(atom, [fn["line"], 0])
                yield _finding(
                    project,
                    self.rule_id,
                    fid,
                    line,
                    col,
                    f"partition() returns '{param}.{atom[2]}' — a column "
                    "view into the shared batch; sub-problems sharing "
                    "backing arrays is invisible cross-partition "
                    "communication. Rebuild the column (copy the array, "
                    "ColumnBatch.from_rows) so each sub-problem owns its "
                    "data.",
                )

    def _callback_mutations(
        self, project: ProjectAnalysis, cfq: str
    ) -> Iterator[Finding]:
        for mname, index in sorted(self._BATCH_CALLBACKS.items()):
            found = _method(project, cfq, mname)
            if found is None:
                continue
            fid, fn, summary = found
            data = set(_data_params(fn, (index,)))
            for atom, (line, col, _via) in sorted(summary.mutations.items()):
                if (
                    atom[0] == "pa"
                    and atom[1] in data
                    and atom[2] in self._COLUMN_ATTRS
                ):
                    yield _finding(
                        project,
                        self.rule_id,
                        fid,
                        line,
                        col,
                        f"{mname}() writes the '{atom[2]}' column of "
                        f"'{atom[1]}' in place; columns are numpy views "
                        "shared with other splits and the DFS copy — write "
                        "into a fresh array (column data .copy()) and emit "
                        "that instead.",
                    )
                    break  # one finding per callback is enough
