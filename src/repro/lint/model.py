"""Finding records and the parse-failure error."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        """The JSON-object form used by ``--format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintParseError(Exception):
    """A file could not be tokenized or parsed as Python."""

    def __init__(self, path: str, detail: str) -> None:
        super().__init__(f"{path}: {detail}")
        self.path = path
        self.detail = detail
