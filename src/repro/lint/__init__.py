"""piclint: simulator-invariant static analysis for this reproduction.

Every headline number the benchmarks report is a *simulated* metric, so
the codebase's correctness contract is a set of invariants the test
suite can only spot-check:

* **Determinism** — identical runs (any worker count, any host) must
  produce bit-identical simulated traffic and time.  Wall-clock reads
  and unseeded global RNG state break replay; iterating sets feeds
  nondeterministic order into flow scheduling and metric accumulation.
* **Purity/picklability** — user ``map``/``reduce``/``partition``/
  ``merge`` callbacks run inside the framework loop, sometimes in a
  worker process.  Closures silently fall back to in-process execution
  in :mod:`repro.parallel.executor`; instance mutation inside task-side
  callbacks is lost when the task runs out-of-process.
* **Byte accounting** — flow payloads must be sized with
  :mod:`repro.util.sizing` (or a cached ``.nbytes``), never ``len()``
  or ``sys.getsizeof``, or Table II/Figure 2 bytes silently drift.

Run it with ``python -m repro.lint [paths]`` (or ``pic-lint`` after an
editable install).  Findings carry rule IDs (``PIC001``...); suppress a
line with ``# pic: noqa`` or ``# pic: noqa: PIC001``.
"""

from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.model import Finding, LintParseError
from repro.lint.rules import all_rules, rules_by_id

__all__ = [
    "Finding",
    "LintParseError",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rules_by_id",
]
