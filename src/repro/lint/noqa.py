"""``# pic: noqa`` suppression comments.

Two forms, both line-scoped (the comment must sit on the physical line
the finding is reported at):

* ``# pic: noqa`` — suppress every rule on that line;
* ``# pic: noqa: PIC001,PIC101`` (or ``# pic: noqa[PIC001]``) —
  suppress only the listed rule IDs.

Comments are located with :mod:`tokenize`, so ``pic: noqa`` inside a
string literal never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterable

from repro.lint.model import Finding, LintParseError

_NOQA_RE = re.compile(r"pic:\s*noqa(?P<spec>\s*[:\[][A-Za-z0-9_,:\s]*\]?)?", re.IGNORECASE)


def _parse_spec(spec: str | None) -> frozenset[str] | None:
    """Rule IDs named by a noqa spec, or ``None`` for "all rules"."""
    if spec is None:
        return None
    ids = frozenset(
        part.strip().upper()
        for part in spec.strip().strip("[]:").replace(":", ",").split(",")
        if part.strip()
    )
    return ids or None


def suppressions(path: str, source: str) -> dict[int, frozenset[str] | None]:
    """Map line numbers to the rule IDs suppressed there.

    A value of ``None`` means the whole line is suppressed for every
    rule.
    """
    out: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            ids = _parse_spec(match.group("spec"))
            if ids is None or out.get(line, frozenset()) is None:
                out[line] = None
            else:
                existing = out.get(line) or frozenset()
                out[line] = existing | ids
    except (tokenize.TokenError, IndentationError, SyntaxError) as exc:
        raise LintParseError(path, f"tokenize error: {exc}")
    return out


def filter_findings(
    findings: Iterable[Finding], suppressed: dict[int, frozenset[str] | None]
) -> list[Finding]:
    """Drop findings whose line carries a matching noqa comment."""
    kept = []
    for f in findings:
        rules = suppressed.get(f.line, frozenset())
        if rules is None or (rules and f.rule in rules):
            continue
        kept.append(f)
    return kept
