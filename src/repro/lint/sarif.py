"""SARIF 2.1.0 serialization for code-scanning upload."""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.lint.baseline import finding_fingerprint
from repro.lint.model import Finding
from repro.lint.rules import all_rules

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def _uri(path: str) -> str:
    return Path(path).as_posix()


def to_sarif(findings: Sequence[Finding], errors: Sequence[str]) -> dict:
    """The full SARIF log object for one run."""
    rules = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "warning"},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(f.path)},
                        "region": {"startLine": f.line, "startColumn": f.col},
                    }
                }
            ],
            "partialFingerprints": {"picLint/v1": finding_fingerprint(f)},
        }
        for f in findings
    ]
    notifications = [
        {"level": "error", "message": {"text": err}} for err in errors
    ]
    run: dict = {
        "tool": {
            "driver": {
                "name": "pic-lint",
                "informationUri": "https://example.invalid/pic-lint",
                "rules": rules,
            }
        },
        "results": results,
    }
    if notifications:
        run["invocations"] = [
            {
                "executionSuccessful": False,
                "toolExecutionNotifications": notifications,
            }
        ]
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": [run]}
