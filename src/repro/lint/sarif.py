"""SARIF 2.1.0 serialization for code-scanning upload."""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.lint.baseline import finding_fingerprint
from repro.lint.model import Finding
from repro.lint.rules import all_rules

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: Families whose findings are correctness-critical, not stylistic:
#: resource-lifecycle bugs (PIC5xx) crash or leak at runtime, and
#: concurrency interference (PIC7xx) silently changes results with the
#: schedule.  Everything else ships as a warning.
ERROR_FAMILIES = frozenset({"PIC5", "PIC7"})

#: GitHub code-scanning ``security-severity`` scores per family level
#: (>= 7.0 renders "high", 4.0–6.9 "medium").
_SEVERITY_SCORE = {"error": "7.5", "warning": "5.0"}


def severity_level(rule_id: str) -> str:
    """SARIF ``level`` for a rule: family-consistent error/warning."""
    return "error" if rule_id[:4] in ERROR_FAMILIES else "warning"


def _uri(path: str) -> str:
    return Path(path).as_posix()


def to_sarif(findings: Sequence[Finding], errors: Sequence[str]) -> dict:
    """The full SARIF log object for one run."""
    rules = []
    for rule in all_rules():
        level = severity_level(rule.rule_id)
        rules.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": level},
                "properties": {
                    "problem.severity": level,
                    "security-severity": _SEVERITY_SCORE[level],
                },
            }
        )
    results = [
        {
            "ruleId": f.rule,
            "level": severity_level(f.rule),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(f.path)},
                        "region": {"startLine": f.line, "startColumn": f.col},
                    }
                }
            ],
            "partialFingerprints": {"picLint/v1": finding_fingerprint(f)},
        }
        for f in findings
    ]
    notifications = [
        {"level": "error", "message": {"text": err}} for err in errors
    ]
    run: dict = {
        "tool": {
            "driver": {
                "name": "pic-lint",
                "informationUri": "https://example.invalid/pic-lint",
                "rules": rules,
            }
        },
        "results": results,
    }
    if notifications:
        run["invocations"] = [
            {
                "executionSuccessful": False,
                "toolExecutionNotifications": notifications,
            }
        ]
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": [run]}
