"""The :class:`Cluster` facade tying the simulator pieces together."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cluster.events import Simulation
from repro.cluster.flows import Flow, FlowNetwork, FlowRequest
from repro.cluster.metrics import TrafficMeter
from repro.cluster.topology import Node, NodeSpec, Topology


class Cluster:
    """A simulated cluster: clock + topology + network + traffic ledger.

    Layers above (DFS, MapReduce, PIC) hold a reference to one
    ``Cluster`` and use it for all timing and data movement.  The object
    is cheap; experiments create a fresh one per run so the meter starts
    from zero.
    """

    def __init__(
        self,
        num_nodes: int,
        nodes_per_rack: int | None = None,
        node_spec: NodeSpec | None = None,
        edge_bandwidth: float = 125e6,
        rack_uplink_bandwidth: float | None = None,
        oversubscription: float = 1.0,
        name: str = "cluster",
        node_specs: list[NodeSpec] | None = None,
    ) -> None:
        if nodes_per_rack is None:
            nodes_per_rack = num_nodes
        if node_spec is None:
            node_spec = NodeSpec()
        self.name = name
        self.sim = Simulation()
        self.topology = Topology(
            num_nodes=num_nodes,
            nodes_per_rack=nodes_per_rack,
            node_spec=node_spec,
            edge_bandwidth=edge_bandwidth,
            rack_uplink_bandwidth=rack_uplink_bandwidth,
            oversubscription=oversubscription,
            node_specs=node_specs,
        )
        self.meter = TrafficMeter()
        self.network = FlowNetwork(self.sim, self.topology, self.meter)

    # -- convenience passthroughs --------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.sim.now

    @property
    def nodes(self) -> list[Node]:
        """The topology's nodes, in id order."""
        return self.topology.nodes

    @property
    def num_nodes(self) -> int:
        """Number of worker nodes."""
        return self.topology.num_nodes

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: float,
        category: str,
        on_complete: Callable[[Flow], None] | None = None,
    ) -> Flow:
        """Start a flow; completion is delivered on the simulated clock."""
        return self.network.start_flow(src, dst, nbytes, category, on_complete)

    def transfer_batch(self, requests: Iterable[FlowRequest]) -> list[Flow]:
        """Start many flows in one call (a shuffle wave, a scatter).

        Each request is ``(src, dst, nbytes, category)`` optionally
        followed by an ``on_complete`` callback; semantics are identical
        to calling :meth:`transfer` per request.
        """
        return self.network.start_flows(requests)

    def run(self, max_events: int | None = 10_000_000) -> None:
        """Drain the event queue (i.e. let all in-flight work finish)."""
        self.sim.run(max_events=max_events)

    def compute_time(self, node_id: int, seconds_at_reference_speed: float) -> float:
        """Scale a reference-CPU compute cost to ``node_id``'s core speed."""
        node = self.topology.nodes[node_id]
        return seconds_at_reference_speed / node.spec.cpu_speed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster({self.name!r}, {self.topology!r})"
