"""Cluster presets matching the paper's three testbeds (Section V-A).

* **small** — the 6-node research testbed: two quad-core E5520 Xeons per
  node (8 physical cores), 48 GB RAM, Gigabit Ethernet, one rack, and
  "24 map and 24 reduce task slots" in total (4 + 4 per node).
* **medium** — the 64-node shared production cluster: two quad-core
  E5430 Xeons, 16 GB RAM, 6 racks on Gigabit Ethernet, "330 map and 110
  reduce task slots" (≈5 map + 2 reduce per node; we use exactly that,
  giving 320/128 — the nearest per-node-uniform configuration).
* **large** — up to 256 Amazon EMR extra-large instances: 15 GB RAM,
  4 virtual cores (8 EC2 compute units), virtualised networking with
  heavier oversubscription, racks of 16.

CPU speeds are relative to the E5520 (2.27 GHz) reference = 1.0.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.topology import GIGABIT, NodeSpec


def small_cluster() -> Cluster:
    """The paper's 6-node research testbed."""
    spec = NodeSpec(
        cores=8,
        map_slots=4,
        reduce_slots=4,
        cpu_speed=1.0,
        ram_bytes=48 * 2**30,
    )
    return Cluster(
        num_nodes=6,
        nodes_per_rack=6,
        node_spec=spec,
        edge_bandwidth=GIGABIT,
        name="small-6",
    )


def medium_cluster() -> Cluster:
    """The paper's 64-node, 6-rack shared production cluster."""
    spec = NodeSpec(
        cores=8,
        map_slots=5,
        reduce_slots=2,
        cpu_speed=2.66 / 2.27,  # E5430 @2.66GHz vs E5520 reference
        ram_bytes=16 * 2**30,
    )
    return Cluster(
        num_nodes=64,
        nodes_per_rack=11,  # 64 nodes over 6 racks
        node_spec=spec,
        edge_bandwidth=GIGABIT,
        oversubscription=4.0,  # typical production-rack uplink ratio
        name="medium-64",
    )


def large_cluster(num_nodes: int = 256) -> Cluster:
    """EMR-style virtual cluster of ``num_nodes`` extra-large instances."""
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    spec = NodeSpec(
        cores=4,
        map_slots=4,
        reduce_slots=4,
        cpu_speed=1.0,
        ram_bytes=15 * 2**30,
    )
    return Cluster(
        num_nodes=num_nodes,
        nodes_per_rack=16,
        node_spec=spec,
        edge_bandwidth=GIGABIT,
        oversubscription=8.0,  # virtualised EC2-era networking
        name=f"large-{num_nodes}",
    )
