"""Discrete-event simulation core.

A :class:`Simulation` owns a virtual clock and a priority queue of
:class:`Event` objects.  Events are callbacks scheduled at an absolute
simulated time; ties are broken by insertion order so runs are fully
deterministic.  Events can be cancelled (lazy deletion), which the
flow-level network model relies on to re-plan the next flow completion
whenever the set of active flows changes.

Long multi-job runs cancel far more events than they execute (every
flow arrival used to invalidate the standing completion timer), so the
queue performs *heap hygiene*: the simulation tracks how many cancelled
events are still sitting in the heap and compacts — filters the dead
entries out and re-heapifies the survivors — once they outnumber the
live ones.  Ordering is unaffected because every event carries a unique
``(time, seq)`` key.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

# Compaction fires when the heap holds at least this many cancelled
# events AND they make up more than half the heap.  The floor keeps
# tiny queues from churning; the fraction bounds wasted memory and the
# pop-side skip work to a constant factor of the live event count.
_COMPACT_MIN_DEAD = 64


@dataclass(slots=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence number).

    Slotted: the flow simulator allocates (and lazily cancels) one of
    these per replan, so size and attribute-access cost matter.
    """

    time: float
    seq: int
    callback: Callable[[], Any]
    cancelled: bool = False
    # Backref to the owning simulation while the event is pending, so
    # cancel() can maintain the dead-event bookkeeping.  Cleared when
    # the event is popped; a cancel after execution is then a no-op.
    owner: Simulation | None = field(default=None, repr=False)

    def __lt__(self, other: "Event") -> bool:
        # Hand-written instead of dataclass ``order=True``: the heap
        # compares events constantly and the generated version builds
        # two tuples per comparison.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the simulation skips it when popped.

        Idempotent; cancelling an already-executed event is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()
            self.owner = None


class Simulation:
    """A deterministic event loop with a simulated clock.

    The clock only moves forward, and only via :meth:`run` /
    :meth:`run_until`.  Layers above never sleep; they schedule
    continuation callbacks.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._cancelled = 0
        self._dead = 0  # cancelled events still sitting in the heap

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def events_cancelled(self) -> int:
        """Number of events cancelled before they could execute."""
        return self._cancelled

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, owner=self)
        heapq.heappush(self._queue, event)
        return event

    def schedule_batch(
        self, delay: float, callbacks: Iterable[Callable[[], Any]]
    ) -> Event:
        """Schedule several callbacks at one instant as a single heap entry.

        The callbacks run back-to-back, in the order given, under one
        event — a cheap path for same-timestamp bursts (e.g. a wave of
        flow starts) that would otherwise each pay a heap push/pop.
        """
        batch = list(callbacks)

        def _run_batch() -> None:
            for cb in batch:
                cb()

        return self.schedule(delay, _run_batch)

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and restore the invariant."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._dead -= 1
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next live event.  Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._dead -= 1
                continue
            self._now = event.time
            self._processed += 1
            event.owner = None
            event.callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` events executed)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulation did not quiesce within {max_events} events; "
                    "likely an event livelock in a layer above"
                )

    def run_until(self, time: float) -> None:
        """Run all events scheduled at or before ``time``, then set the clock."""
        if time < self._now:
            raise ValueError(f"cannot run backwards to t={time} from t={self._now}")
        queue = self._queue
        while queue:
            event = queue[0]
            if event.cancelled:
                heapq.heappop(queue)
                self._dead -= 1
                continue
            if event.time > time:
                break
            heapq.heappop(queue)
            self._now = event.time
            self._processed += 1
            event.owner = None
            event.callback()
        self._now = time
