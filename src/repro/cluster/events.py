"""Discrete-event simulation core.

A :class:`Simulation` owns a virtual clock and a priority queue of
:class:`Event` objects.  Events are callbacks scheduled at an absolute
simulated time; ties are broken by insertion order so runs are fully
deterministic.  Events can be cancelled (lazy deletion), which the
flow-level network model relies on to re-plan the next flow completion
whenever the set of active flows changes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence number).

    Slotted: the flow simulator allocates (and lazily cancels) one of
    these per replan, so size and attribute-access cost matter.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulation skips it when popped."""
        self.cancelled = True


class Simulation:
    """A deterministic event loop with a simulated clock.

    The clock only moves forward, and only via :meth:`run` /
    :meth:`run_until`.  Layers above never sleep; they schedule
    continuation callbacks.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next live event.  Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` events executed)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulation did not quiesce within {max_events} events; "
                    "likely an event livelock in a layer above"
                )

    def run_until(self, time: float) -> None:
        """Run all events scheduled at or before ``time``, then set the clock."""
        if time < self._now:
            raise ValueError(f"cannot run backwards to t={time} from t={self._now}")
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > time:
                break
            self.step()
        self._now = time
