"""Discrete-event simulation core.

A :class:`Simulation` owns a virtual clock and a priority queue of
:class:`Event` objects.  Events are callbacks scheduled at an absolute
simulated time; ties are broken by insertion order so runs are fully
deterministic.  Events can be cancelled (lazy deletion), which the
flow-level network model relies on to re-plan the next flow completion
whenever the set of active flows changes.

Long multi-job runs cancel far more events than they execute (every
flow arrival used to invalidate the standing completion timer), so the
queue performs *heap hygiene*: the simulation tracks how many cancelled
events are still sitting in the heap and compacts — filters the dead
entries out and re-heapifies the survivors — once they outnumber the
live ones.  Ordering is unaffected because every event carries a unique
``(time, tie, seq)`` key.

**Schedule sanitizer** (``PIC_SANITIZE=<seed>``): correct layers above
must not depend on *which* of two causally unrelated events at the same
timestamp runs first.  With a sanitize seed set, the queue applies a
seeded permutation to exactly that slack: every event carries a ``tie``
key derived from ``(seed, parent)`` where *parent* is the event whose
callback scheduled it (or the root context, outside any callback).
Events with the same parent keep their program order; events from
different parents at the same timestamp are interleaved pseudo-randomly
but deterministically per seed.  Simulated seconds, bytes and models
must be bit-identical for every seed — a divergence is an
order-dependence bug (see DESIGN.md §14 for the legal tie orders).
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

# Compaction fires when the heap holds at least this many cancelled
# events AND they make up more than half the heap.  The floor keeps
# tiny queues from churning; the fraction bounds wasted memory and the
# pop-side skip work to a constant factor of the live event count.
_COMPACT_MIN_DEAD = 64

_MASK64 = (1 << 64) - 1
#: Root "parent" for events scheduled outside any callback (driver /
#: submission code).  All root events share one tie key, so submission
#: program order is part of the sanitizer's preserved order.
_ROOT_PARENT = -1


def _mix(seed: int, parent: int) -> int:
    """splitmix64-style hash of ``(seed, parent)`` — the sanitizer tie key.

    Pure integer arithmetic so the permutation is identical on every
    platform and Python build.
    """
    x = (
        seed * 0x9E3779B97F4A7C15 + (parent + 1) * 0xBF58476D1CE4E5B9
    ) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def sanitize_seed_from_env() -> int | None:
    """The ambient ``PIC_SANITIZE`` seed, or None when unset/empty."""
    raw = os.environ.get("PIC_SANITIZE", "").strip()
    if not raw:
        return None
    return int(raw)


@dataclass(slots=True)
class Event:
    """A scheduled callback.  Ordered by (time, tie, sequence number).

    ``tie`` is 0 for every event when the sanitizer is off, so ordering
    degenerates to the historical ``(time, seq)`` insertion order.

    Slotted: the flow simulator allocates (and lazily cancels) one of
    these per replan, so size and attribute-access cost matter.
    """

    time: float
    seq: int
    callback: Callable[[], Any]
    tie: int = 0
    # Serialization-point flag: late events sort after every normal
    # event at the same timestamp, under any sanitizer seed.  Shared
    # resource matching (slot schedulers, the RM) runs there so its
    # decisions are made once per instant over complete state.
    late: bool = False
    cancelled: bool = False
    # Backref to the owning simulation while the event is pending, so
    # cancel() can maintain the dead-event bookkeeping.  Cleared when
    # the event is popped; a cancel after execution is then a no-op.
    owner: Simulation | None = field(default=None, repr=False)

    def __lt__(self, other: "Event") -> bool:
        # Hand-written instead of dataclass ``order=True``: the heap
        # compares events constantly and the generated version builds
        # two tuples per comparison.
        if self.time != other.time:
            return self.time < other.time
        if self.late != other.late:
            return not self.late
        if self.tie != other.tie:
            return self.tie < other.tie
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the simulation skips it when popped.

        Idempotent; cancelling an already-executed event is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()
            self.owner = None


class Simulation:
    """A deterministic event loop with a simulated clock.

    The clock only moves forward, and only via :meth:`run` /
    :meth:`run_until`.  Layers above never sleep; they schedule
    continuation callbacks.
    """

    def __init__(self, tie_seed: int | None = None) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._cancelled = 0
        self._dead = 0  # cancelled events still sitting in the heap
        # Schedule sanitizer: explicit seed wins, else PIC_SANITIZE.
        self._tie_seed = (
            tie_seed if tie_seed is not None else sanitize_seed_from_env()
        )
        # Sequence number of the event whose callback is currently
        # executing; new events inherit it as their causal parent.
        self._parent = _ROOT_PARENT

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def tie_seed(self) -> int | None:
        """Active sanitizer seed (None: historical insertion order)."""
        return self._tie_seed

    @property
    def in_callback(self) -> bool:
        """True while an event callback is executing on this simulation.

        Resource managers use this to decide between serving requests
        synchronously (driver/submission code, unit tests) and
        deferring to a :meth:`schedule_serialized` point.
        """
        return self._parent != _ROOT_PARENT

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def events_cancelled(self) -> int:
        """Number of events cancelled before they could execute."""
        return self._cancelled

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        tie = 0 if self._tie_seed is None else _mix(self._tie_seed, self._parent)
        event = Event(
            time=time, seq=next(self._seq), callback=callback, tie=tie, owner=self
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_serialized(self, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at the *current* instant, after every
        normal event already at (or later scheduled for) this timestamp.

        This is a **serialization point**: layers that arbitrate shared
        resources (slot schedulers, the ResourceManager, reduce-slot
        waiter queues) defer their matching here, so the decision runs
        exactly once per timestamp over the complete request/release
        state — and its outcome cannot depend on the tie order the
        sanitizer permutes.  Late events still carry a seeded tie among
        themselves; distinct serialization points at one instant must
        own disjoint resources.
        """
        tie = 0 if self._tie_seed is None else _mix(self._tie_seed, self._parent)
        event = Event(
            time=self._now,
            seq=next(self._seq),
            callback=callback,
            tie=tie,
            late=True,
            owner=self,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_batch(
        self, delay: float, callbacks: Iterable[Callable[[], Any]]
    ) -> Event:
        """Schedule several callbacks at one instant as a single heap entry.

        The callbacks run back-to-back, in the order given, under one
        event — a cheap path for same-timestamp bursts (e.g. a wave of
        flow starts) that would otherwise each pay a heap push/pop.
        """
        batch = list(callbacks)

        def _run_batch() -> None:
            for cb in batch:
                cb()

        return self.schedule(delay, _run_batch)

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and restore the invariant."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._dead -= 1
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next live event.  Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._dead -= 1
                continue
            self._now = event.time
            self._processed += 1
            event.owner = None
            prev_parent = self._parent
            self._parent = event.seq
            try:
                event.callback()
            finally:
                self._parent = prev_parent
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` events executed)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulation did not quiesce within {max_events} events; "
                    "likely an event livelock in a layer above"
                )

    def run_until(self, time: float) -> None:
        """Run all events scheduled at or before ``time``, then set the clock."""
        if time < self._now:
            raise ValueError(f"cannot run backwards to t={time} from t={self._now}")
        # Always re-read self._queue: a callback may cancel enough events
        # to trigger _compact(), which rebinds the heap.  Iterating a
        # stale local binding would drop events the callback scheduled
        # (they land on the new heap) and re-skip compacted dead ones.
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                self._dead -= 1
                continue
            if event.time > time:
                break
            heapq.heappop(self._queue)
            self._now = event.time
            self._processed += 1
            event.owner = None
            prev_parent = self._parent
            self._parent = event.seq
            try:
                event.callback()
            finally:
                self._parent = prev_parent
        self._now = time
