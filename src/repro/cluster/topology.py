"""Cluster topology: nodes with task slots, racks, and a two-tier network.

The network is the standard data-centre abstraction the paper's traffic
argument rests on: every node has a full-duplex edge link to its rack
switch, and every rack switch has a full-duplex uplink into a core
switch.  Cross-rack ("bisection") bandwidth is the scarce resource; the
rack uplink capacity relative to the sum of edge links expresses
oversubscription.

Links are directional.  A transfer from node *a* to node *b* traverses:

* nothing, when ``a == b`` (intra-node data never touches the fabric);
* ``a.up → b.down`` when the nodes share a rack;
* ``a.up → rack(a).core_up → rack(b).core_down → b.down`` otherwise.

The core links are tagged ``is_core`` so the metrics layer can report
bisection traffic exactly the way Figure 2 / Table II do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


GIGABIT = 125e6  # 1 Gb/s in bytes per second

# The two-tier fabric bounds every path at up → core_up → core_down → down.
MAX_PATH_LINKS = 4


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one worker node.

    ``cpu_speed`` is a relative per-core speed multiplier (1.0 = the
    paper's E5520 reference); task compute times are divided by it.
    """

    cores: int = 8
    map_slots: int = 4
    reduce_slots: int = 4
    cpu_speed: float = 1.0
    disk_bandwidth: float = 100e6  # bytes/s, sequential
    ram_bytes: int = 48 * 2**30

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"node must have at least one core, got {self.cores}")
        if self.map_slots < 0 or self.reduce_slots < 0:
            raise ValueError("slot counts must be non-negative")
        if self.cpu_speed <= 0:
            raise ValueError(f"cpu_speed must be positive, got {self.cpu_speed}")
        if self.disk_bandwidth <= 0:
            raise ValueError("disk_bandwidth must be positive")


@dataclass
class Node:
    """One worker node placed in a rack."""

    node_id: int
    rack_id: int
    spec: NodeSpec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.node_id}, rack={self.rack_id})"


@dataclass
class Link:
    """A directional capacitated link."""

    link_id: int
    name: str
    capacity: float  # bytes per second
    is_core: bool = False
    bytes_carried: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.name} capacity must be positive")


class Route:
    """Cached routing result for one ``(src, dst)`` pair.

    The flow simulator resolves a route per transfer; caching the link
    tuple, the padded link-id row (ready to drop into the simulator's
    incidence matrix), the bottleneck capacity, and the bisection flag
    means each is computed once per pair instead of once per flow.
    """

    __slots__ = (
        "links", "link_ids", "padded_ids", "padded_tuple",
        "crosses_core", "bottleneck",
    )

    def __init__(self, links: tuple[Link, ...], crosses_core: bool, pad: int) -> None:
        self.links = links
        self.link_ids: tuple[int, ...] = tuple(link.link_id for link in links)
        # Padded to the fixed matrix width with ``pad`` (the one-past-end
        # link id): the simulator's per-link count/saturation arrays carry
        # one extra sentinel slot, so padded entries index it harmlessly
        # and no validity mask is ever needed.
        self.padded_tuple: tuple[int, ...] = self.link_ids + (pad,) * (
            MAX_PATH_LINKS - len(self.link_ids)
        )
        padded = np.array(self.padded_tuple, dtype=np.int64)
        padded.setflags(write=False)
        self.padded_ids = padded
        self.crosses_core = crosses_core
        self.bottleneck = (
            min(link.capacity for link in links) if links else math.inf
        )


class Topology:
    """Nodes, racks and the two-tier link graph connecting them."""

    def __init__(
        self,
        num_nodes: int,
        nodes_per_rack: int,
        node_spec: NodeSpec,
        edge_bandwidth: float = GIGABIT,
        rack_uplink_bandwidth: float | None = None,
        oversubscription: float = 1.0,
        node_specs: list[NodeSpec] | None = None,
    ) -> None:
        """Build a topology.

        ``rack_uplink_bandwidth`` wins if given; otherwise the uplink is
        sized as ``nodes_per_rack * edge_bandwidth / oversubscription``.
        A single-rack topology still has core links (they model the
        switch backplane) sized at the full aggregate so they are never
        the bottleneck within one rack.

        ``node_specs`` (one per node) overrides the uniform
        ``node_spec`` — heterogeneous clusters model the slow/overloaded
        nodes that make speculative execution matter.
        """
        if num_nodes <= 0:
            raise ValueError(f"need at least one node, got {num_nodes}")
        if nodes_per_rack <= 0:
            raise ValueError("nodes_per_rack must be positive")
        if oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1 (got {oversubscription}); "
                "use rack_uplink_bandwidth to express over-provisioned uplinks"
            )
        if node_specs is not None and len(node_specs) != num_nodes:
            raise ValueError(
                f"node_specs has {len(node_specs)} entries for {num_nodes} nodes"
            )
        self.num_nodes = num_nodes
        self.nodes_per_rack = nodes_per_rack
        self.node_spec = node_spec
        self.edge_bandwidth = edge_bandwidth
        self.num_racks = (num_nodes + nodes_per_rack - 1) // nodes_per_rack
        if rack_uplink_bandwidth is None:
            rack_uplink_bandwidth = nodes_per_rack * edge_bandwidth / oversubscription
        self.rack_uplink_bandwidth = rack_uplink_bandwidth

        self._routes: dict[tuple[int, int], Route] = {}
        self.nodes: list[Node] = [
            Node(
                node_id=i,
                rack_id=i // nodes_per_rack,
                spec=node_specs[i] if node_specs is not None else node_spec,
            )
            for i in range(num_nodes)
        ]
        self.links: list[Link] = []
        self._node_up: list[Link] = []
        self._node_down: list[Link] = []
        self._rack_up: list[Link] = []
        self._rack_down: list[Link] = []
        for node in self.nodes:
            self._node_up.append(self._add_link(f"node{node.node_id}.up", edge_bandwidth))
            self._node_down.append(
                self._add_link(f"node{node.node_id}.down", edge_bandwidth)
            )
        for rack in range(self.num_racks):
            self._rack_up.append(
                self._add_link(
                    f"rack{rack}.core_up", rack_uplink_bandwidth, is_core=True
                )
            )
            self._rack_down.append(
                self._add_link(
                    f"rack{rack}.core_down", rack_uplink_bandwidth, is_core=True
                )
            )

    def _add_link(self, name: str, capacity: float, is_core: bool = False) -> Link:
        link = Link(link_id=len(self.links), name=name, capacity=capacity, is_core=is_core)
        self.links.append(link)
        return link

    def path(self, src: int, dst: int) -> list[Link]:
        """Return the directional links a ``src → dst`` transfer occupies."""
        return list(self.route(src, dst).links)

    def route(self, src: int, dst: int) -> Route:
        """The cached :class:`Route` for ``src → dst``.

        Validation and link-set construction run once per pair; repeat
        lookups (every flow of a shuffle fan-out) are one dict hit.
        """
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            links: tuple[Link, ...] = ()
            crosses = False
        else:
            src_rack = self.nodes[src].rack_id
            dst_rack = self.nodes[dst].rack_id
            crosses = src_rack != dst_rack
            if crosses:
                links = (
                    self._node_up[src],
                    self._rack_up[src_rack],
                    self._rack_down[dst_rack],
                    self._node_down[dst],
                )
            else:
                links = (self._node_up[src], self._node_down[dst])
        route = Route(links, crosses, pad=len(self.links))
        self._routes[key] = route
        return route

    def crosses_core(self, src: int, dst: int) -> bool:
        """True when a ``src → dst`` transfer contributes to bisection traffic."""
        self._check_node(src)
        self._check_node(dst)
        return self.nodes[src].rack_id != self.nodes[dst].rack_id

    def rack_members(self, rack_id: int) -> list[Node]:
        """Nodes located in ``rack_id``."""
        if not 0 <= rack_id < self.num_racks:
            raise ValueError(f"rack {rack_id} out of range (0..{self.num_racks - 1})")
        return [n for n in self.nodes if n.rack_id == rack_id]

    def total_map_slots(self) -> int:
        """Cluster-wide map-slot count."""
        return sum(n.spec.map_slots for n in self.nodes)

    def total_reduce_slots(self) -> int:
        """Cluster-wide reduce-slot count."""
        return sum(n.spec.reduce_slots for n in self.nodes)

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node {node_id} out of range (0..{self.num_nodes - 1})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(nodes={self.num_nodes}, racks={self.num_racks}, "
            f"edge={self.edge_bandwidth / 1e6:.0f} MB/s, "
            f"uplink={self.rack_uplink_bandwidth / 1e6:.0f} MB/s)"
        )
