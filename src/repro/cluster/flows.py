"""Flow-level network simulation with max-min fair bandwidth sharing.

Instead of simulating packets, each transfer is a *flow* with a byte
count and a fixed path of directional links.  At any instant every flow
has a rate determined by **progressive filling** (the textbook max-min
fairness algorithm): all flows' rates grow uniformly until a link
saturates, flows crossing saturated links freeze, and the process
repeats on the residual capacities.  The simulation advances from one
flow-completion event to the next; whenever the active set changes, the
rates are recomputed and the next completion is re-planned.

This is the fluid approximation commonly used for data-centre studies;
it captures exactly the effect the paper's argument depends on — many
concurrent shuffle flows contending for scarce rack uplinks — without
modelling TCP dynamics.

Internally the active set is **structure-of-arrays** state: ``remaining``
bytes, current ``rate``, completion epsilon, and the padded link-id
incidence matrix live in standing NumPy arrays indexed by a dense row
number.  Rows are added at the end and removed by swapping the last row
into the hole, so flow add/remove is O(1) amortized, and every per-event
operation (progress advance, horizon planning, completion scan) is a
vectorized pass over ``[:n]`` slices with no per-flow Python loops.  A
standing link → flow incidence (per-link row arrays, also maintained
incrementally) lets each progressive-filling round touch only the links
it saturates and the flows it freezes, instead of rescanning the active
set.  All completions landing at the same horizon drain in a single
event.  The arithmetic is element-for-element the same IEEE operations
the per-object implementation performed, so simulated seconds and byte
accounting are bit-identical (see ``tests/cluster/reference_flows.py``
and ``tests/cluster/test_flow_equivalence.py``).
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cluster.events import Event, Simulation
from repro.cluster.metrics import TrafficMeter
from repro.cluster.topology import MAX_PATH_LINKS, Link, Route, Topology

# Flows with fewer remaining bytes than this are considered complete; it
# absorbs float rounding from repeated progress updates.
_REMAINING_EPS = 1e-6

# The absolute epsilon alone is wrong for huge flows: one ULP of a
# multi-GB byte count exceeds 1e-6, so rounding in ``remaining - rate*dt``
# could leave a "finished" flow microscopically short and spawn a cascade
# of near-zero-length completion events.  The completion threshold is
# therefore scale-aware: proportional to the flow size, floored at the
# absolute epsilon for small flows.
_REMAINING_REL_EPS = 1e-9

# Intra-node "transfers" (src == dst) bypass the fabric but still cost a
# memory/loopback copy at this bandwidth.
LOCAL_COPY_BANDWIDTH = 2e9  # bytes/s

# One bulk-start request: (src, dst, nbytes, category[, on_complete]).
FlowRequest = Sequence

# Initial row capacity of the structure-of-arrays state.
_INITIAL_ROWS = 64


def completion_eps(size: float) -> float:
    """Remaining-byte threshold below which a flow of ``size`` is done."""
    return max(_REMAINING_EPS, _REMAINING_REL_EPS * size)


class Flow:
    """One in-flight transfer.

    While the flow occupies fabric links, its ``remaining`` and ``rate``
    live in the owning :class:`FlowNetwork`'s arrays (``_row`` is the
    index); the properties read through.  Once finished (or for
    intra-node copies that never touch the arrays) the values are plain
    scalars captured at detach time.
    """

    __slots__ = (
        "flow_id", "src", "dst", "size", "links", "category",
        "on_complete", "started_at", "completed_at",
        "_net", "_row", "_remaining", "_rate", "_ptuple",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size: float,
        links: tuple[Link, ...],
        category: str,
        on_complete: Callable[["Flow"], None] | None,
        started_at: float,
        net: "FlowNetwork",
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.links = links
        self.category = category
        self.on_complete = on_complete
        self.started_at = started_at
        self.completed_at: float | None = None
        self._net = net
        self._row = -1
        self._remaining = size
        self._rate = 0.0
        self._ptuple: tuple[int, ...] = ()

    @property
    def remaining(self) -> float:
        """Bytes still to transfer."""
        row = self._row
        if row >= 0:
            return float(self._net._remaining[row])
        return self._remaining

    @remaining.setter
    def remaining(self, value: float) -> None:
        if self._row >= 0:
            self._net._remaining[self._row] = value
        else:
            self._remaining = value

    @property
    def rate(self) -> float:
        """Current max-min fair rate in bytes per second."""
        row = self._row
        if row >= 0:
            return float(self._net._rate[row])
        return self._rate

    @property
    def done(self) -> bool:
        """True once the last byte has landed."""
        return self.completed_at is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.flow_id}, {self.src}->{self.dst}, "
            f"{self.category!r}, {self.size:.0f}B)"
        )


class FlowNetwork:
    """Tracks active flows on a topology and advances them on the DES clock."""

    def __init__(
        self, sim: Simulation, topology: Topology, meter: TrafficMeter | None = None
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.meter = meter if meter is not None else TrafficMeter()
        self._ids = itertools.count()
        self._last_update = sim.now
        self._completion_event: Event | None = None
        self._recompute_event: Event | None = None
        self._capacities = np.array(
            [link.capacity for link in topology.links], dtype=float
        )
        self._num_links = len(topology.links)
        # Saturation thresholds, fixed per link (multiplying before the
        # per-round gather is bit-identical to multiplying after it).
        self._thresholds = 1e-9 * self._capacities
        # Structure-of-arrays state for the active flow set: rows [0, _n)
        # are live; removal swaps the last row into the hole.  Link-id
        # rows shorter than MAX_PATH_LINKS are padded with the sentinel
        # id ``num_links``: per-link arrays in the filling loop carry one
        # extra never-saturated / never-read slot, so padded entries need
        # no validity masking anywhere.
        self._remaining = np.zeros(_INITIAL_ROWS)
        self._rate = np.zeros(_INITIAL_ROWS)
        self._eps = np.zeros(_INITIAL_ROWS)
        self._link_ids = np.full(
            (_INITIAL_ROWS, MAX_PATH_LINKS), self._num_links, dtype=np.int64
        )
        self._row_flows: list[Flow | None] = [None] * _INITIAL_ROWS
        self._n = 0
        # Standing link -> flow incidence, maintained by _attach/_detach:
        # for each link, a dense array of the active rows crossing it
        # (amortized-doubling capacity, swap-remove within the segment).
        # ``_link_cols[l][p]`` records which path slot of row
        # ``_link_rows[l][p]`` refers to link ``l``, and ``_pos[row, k]``
        # is that entry's position, so removals and row renumbering stay
        # O(1) per slot.  Rate recomputation reads the segments directly
        # instead of rebuilding any incidence structure.
        self._link_rows: list[np.ndarray] = [
            np.empty(4, dtype=np.int64) for _ in range(self._num_links + 1)
        ]
        self._link_cols: list[np.ndarray] = [
            np.empty(4, dtype=np.int8) for _ in range(self._num_links + 1)
        ]
        self._link_sizes: list[int] = [0] * (self._num_links + 1)
        self._pos = np.zeros((_INITIAL_ROWS, MAX_PATH_LINKS), dtype=np.int64)

    @property
    def active_flows(self) -> list[Flow]:
        """Flows currently occupying fabric links (in start order)."""
        flows = [f for f in self._row_flows[: self._n] if f is not None]
        flows.sort(key=lambda f: f.flow_id)
        return flows

    def start_flow(
        self,
        src: int,
        dst: int,
        nbytes: float,
        category: str,
        on_complete: Callable[[Flow], None] | None = None,
    ) -> Flow:
        """Begin transferring ``nbytes`` from ``src`` to ``dst``.

        ``on_complete`` fires (via the simulation) when the last byte
        lands.  Byte accounting happens immediately: the transfer is
        committed once started.
        """
        flow = self._begin(src, dst, nbytes, category, on_complete)
        # Batch rate recomputation: many flows typically start at the
        # same instant (a map task fanning out its shuffle); one
        # recompute after the batch is both faster and equivalent.
        if flow._row >= 0 and self._recompute_event is None:
            self._recompute_event = self.sim.schedule(0.0, self._do_recompute)
        return flow

    def start_flows(self, requests: Iterable[FlowRequest]) -> list[Flow]:
        """Begin a batch of transfers in one call.

        Each request is ``(src, dst, nbytes, category)`` optionally
        followed by an ``on_complete`` callback.  Event ordering, flow
        ids, and all floats are identical to calling :meth:`start_flow`
        once per request — this exists so a map wave's shuffle fan-out
        (or a PIC scatter) crosses the network API once per wave, not
        once per flow, and shares a single rate recompute.
        """
        flows: list[Flow] = []
        schedule = self.sim.schedule
        for req in requests:
            on_complete = req[4] if len(req) > 4 else None
            flow = self._begin(req[0], req[1], req[2], req[3], on_complete)
            if flow._row >= 0 and self._recompute_event is None:
                self._recompute_event = schedule(0.0, self._do_recompute)
            flows.append(flow)
        return flows

    def _begin(
        self,
        src: int,
        dst: int,
        nbytes: float,
        category: str,
        on_complete: Callable[[Flow], None] | None,
    ) -> Flow:
        if nbytes < 0:
            raise ValueError(f"cannot transfer a negative byte count: {nbytes}")
        route = self.topology.route(src, dst)
        links = route.links
        self.meter.record(
            category, nbytes, crosses_core=route.crosses_core, on_fabric=bool(links)
        )
        for link in links:
            link.bytes_carried += nbytes

        flow = Flow(
            flow_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(nbytes),
            links=links,
            category=category,
            on_complete=on_complete,
            started_at=self.sim.now,
            net=self,
        )
        if not links:
            # Intra-node: costs a local copy, never contends with the fabric.
            delay = nbytes / LOCAL_COPY_BANDWIDTH
            self.sim.schedule(delay, lambda: self._finish(flow))
            return flow
        if nbytes <= _REMAINING_EPS:
            self.sim.schedule(0.0, lambda: self._finish(flow))
            return flow

        self._advance_progress()
        self._attach(flow, route)
        return flow

    def _do_recompute(self) -> None:
        self._recompute_event = None
        self._advance_progress()
        self._recompute_rates()
        self._replan()

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Uncontended transfer time (for cost estimation, not simulation)."""
        route = self.topology.route(src, dst)
        if not route.links:
            return nbytes / LOCAL_COPY_BANDWIDTH
        return nbytes / route.bottleneck

    # ------------------------------------------------------------------
    # structure-of-arrays row management

    def _attach(self, flow: Flow, route: Route) -> None:
        """Claim the next dense row for ``flow``; O(1) amortized."""
        i = self._n
        if i == len(self._row_flows):
            self._grow()
        self._remaining[i] = flow._remaining
        self._rate[i] = 0.0
        self._eps[i] = completion_eps(flow.size)
        self._link_ids[i] = route.padded_ids
        ptuple = route.padded_tuple
        flow._ptuple = ptuple
        sentinel = self._num_links
        link_rows = self._link_rows
        link_sizes = self._link_sizes
        pos = self._pos
        for k in range(MAX_PATH_LINKS):
            link = ptuple[k]
            if link == sentinel:
                break
            size = link_sizes[link]
            arr = link_rows[link]
            if size == arr.size:
                arr = self._grow_link(link)
            arr[size] = i
            self._link_cols[link][size] = k
            pos[i, k] = size
            link_sizes[link] = size + 1
        self._row_flows[i] = flow
        flow._row = i
        self._n = i + 1

    def _detach(self, flow: Flow) -> None:
        """Release ``flow``'s row, compacting by swapping the last row in."""
        i = flow._row
        flow._remaining = float(self._remaining[i])
        flow._rate = float(self._rate[i])
        flow._row = -1
        sentinel = self._num_links
        link_rows = self._link_rows
        link_cols = self._link_cols
        link_sizes = self._link_sizes
        pos = self._pos
        # Drop the flow's incidence entries, swap-removing within each
        # link segment (same-rack pad slots were never inserted).
        for k in range(MAX_PATH_LINKS):
            link = flow._ptuple[k]
            if link == sentinel:
                break
            p = pos[i, k]
            size = link_sizes[link] - 1
            arr = link_rows[link]
            if p != size:
                cols = link_cols[link]
                moved_row = arr[size]
                moved_col = cols[size]
                arr[p] = moved_row
                cols[p] = moved_col
                pos[moved_row, moved_col] = p
            link_sizes[link] = size
        last = self._n - 1
        if i != last:
            self._remaining[i] = self._remaining[last]
            self._rate[i] = self._rate[last]
            self._eps[i] = self._eps[last]
            self._link_ids[i] = self._link_ids[last]
            self._pos[i] = self._pos[last]
            moved = self._row_flows[last]
            assert moved is not None
            self._row_flows[i] = moved
            moved._row = i
            # The swapped-in flow changed row number; renumber its
            # incidence entries.
            for k in range(MAX_PATH_LINKS):
                link = moved._ptuple[k]
                if link == sentinel:
                    break
                link_rows[link][pos[i, k]] = i
        self._row_flows[last] = None
        self._n = last

    def _grow(self) -> None:
        old = len(self._row_flows)
        new = 2 * old
        for name in ("_remaining", "_rate", "_eps"):
            grown = np.zeros(new)
            grown[:old] = getattr(self, name)
            setattr(self, name, grown)
        lids = np.full((new, MAX_PATH_LINKS), self._num_links, dtype=np.int64)
        lids[:old] = self._link_ids
        self._link_ids = lids
        grown_pos = np.zeros((new, MAX_PATH_LINKS), dtype=np.int64)
        grown_pos[:old] = self._pos
        self._pos = grown_pos
        self._row_flows.extend([None] * (new - old))

    def _grow_link(self, link: int) -> np.ndarray:
        old = self._link_rows[link]
        grown = np.empty(2 * old.size, dtype=np.int64)
        grown[: old.size] = old
        self._link_rows[link] = grown
        old_cols = self._link_cols[link]
        grown_cols = np.empty(2 * old_cols.size, dtype=np.int8)
        grown_cols[: old_cols.size] = old_cols
        self._link_cols[link] = grown_cols
        return grown

    # ------------------------------------------------------------------
    # internals

    def _advance_progress(self) -> None:
        """Apply each flow's current rate over the elapsed interval."""
        now = self.sim.now
        dt = now - self._last_update
        n = self._n
        if dt > 0 and n:
            rem = self._remaining[:n]
            np.subtract(rem, self._rate[:n] * dt, out=rem)
            np.maximum(rem, 0.0, out=rem)
        self._last_update = now

    def _recompute_rates(self) -> None:
        """Progressive-filling max-min fair rate allocation (vectorized).

        The standing ``(n, MAX_PATH_LINKS)`` link-id matrix is maintained
        incrementally by :meth:`_attach`/:meth:`_detach`; each filling
        round works on a *compacted* view of the still-unfrozen flows, so
        per-round cost shrinks as flows freeze (in an all-to-all fan-out
        the cross-rack majority freezes in the first rounds).  Per-link
        flow counts are maintained by subtraction as flows freeze rather
        than recounted, and a flow's rate is written exactly once — the
        cumulative fill level at the round it froze — instead of being
        incremented every round.

        Saturation flags accumulate across rounds: once a link saturates
        every unfrozen flow crossing it freezes in that same round, so no
        surviving flow can ever touch a previously saturated link and the
        cumulative flags select exactly this round's freezes.

        The fill level is the same left-to-right sum of the same round
        deltas the textbook formulation accumulates per flow, and the
        counts/residual updates are the same integer/IEEE operations, so
        the resulting rates are bit-identical to the reference
        implementation (``tests/cluster/reference_flows.py``).
        """
        n = self._n
        if n == 0:
            return
        rate = self._rate[:n]
        num_links = self._num_links
        link_ids = self._link_ids[:n]
        link_rows = self._link_rows
        link_sizes = self._link_sizes
        # ``counts[num_links]`` is the sentinel slot absorbing padded
        # link ids; it is written but never read.  Active-link state is
        # kept compacted: links drop out permanently once saturated.
        counts = np.array(link_sizes, dtype=np.int64)
        active = np.nonzero(counts[:num_links])[0]
        residual = self._capacities[active]
        thresholds = self._thresholds[active]
        active_counts = counts[active]
        frozen = np.zeros(n, dtype=bool)
        unfrozen = n
        fill = 0.0
        # A link whose flows all froze through *other* links keeps a
        # zero count; its inf ratio never wins the min and it can never
        # saturate afterwards, so it may idle in the active arrays.
        with np.errstate(divide="ignore"):
            for _round in range(num_links + 1):
                if active.size == 0:
                    break
                delta = float((residual / active_counts).min())
                fill += delta
                residual -= delta * active_counts
                saturated = residual <= thresholds
                if not saturated.any():
                    # Numerically nothing saturated (a tiny residual
                    # limited delta); stop to guarantee progress.
                    break
                # Freeze every still-active flow crossing a saturated
                # link at the current fill level (the same left-to-right
                # delta sum the per-flow accumulation would produce).
                # Links are processed one at a time with ``frozen``
                # updated in between, so a flow on two same-round
                # saturated links is collected exactly once and no
                # dedupe pass is ever needed.
                news = []
                for lk in active[saturated]:
                    seg = link_rows[lk][: link_sizes[lk]]
                    fresh = seg[~frozen[seg]]
                    if fresh.size:
                        frozen[fresh] = True
                        news.append(fresh)
                if not news:  # pragma: no cover - numeric corner
                    break
                newly = news[0] if len(news) == 1 else np.concatenate(news)
                rate[newly] = fill
                unfrozen -= newly.size
                if unfrozen == 0:
                    # Everything froze; the remaining rounds would only
                    # drain counts that no flow reads any more.
                    return
                counts -= np.bincount(
                    link_ids[newly].ravel(), minlength=num_links + 1
                )
                keep = ~saturated
                active = active[keep]
                residual = residual[keep]
                thresholds = thresholds[keep]
                active_counts = counts[active]
        # Whatever never froze runs at the final fill level.
        rate[~frozen] = fill

    def _replan(self) -> None:
        """Schedule the internal event for the earliest flow completion."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        n = self._n
        if n == 0:
            return
        rate = self._rate[:n]
        positive = rate > 0
        if not positive.any():
            raise RuntimeError(
                "active flows exist but none has a positive rate; "
                "the rate allocation is wedged"
            )
        horizon = float(np.min(self._remaining[:n][positive] / rate[positive]))
        if not math.isfinite(horizon):  # pragma: no cover - defensive
            raise RuntimeError(
                "active flows exist but none has a positive rate; "
                "the rate allocation is wedged"
            )
        self._completion_event = self.sim.schedule(horizon, self._on_completion)

    def _on_completion(self) -> None:
        self._completion_event = None
        self._advance_progress()
        n = self._n
        # Drain *every* flow that reached its completion threshold at
        # this horizon in one event (same-horizon batching): one scan,
        # one rate recompute, one replan for the whole batch.
        done_rows = np.nonzero(self._remaining[:n] <= self._eps[:n])[0]
        finished: list[Flow] = []
        for i in done_rows:
            flow = self._row_flows[i]
            assert flow is not None
            finished.append(flow)
        finished.sort(key=lambda f: f.flow_id)
        for flow in finished:
            self._detach(flow)
        for flow in finished:
            self._finish(flow)
        self._recompute_rates()
        self._replan()

    def _finish(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.completed_at = self.sim.now
        if flow.on_complete is not None:
            flow.on_complete(flow)
