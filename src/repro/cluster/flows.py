"""Flow-level network simulation with max-min fair bandwidth sharing.

Instead of simulating packets, each transfer is a *flow* with a byte
count and a fixed path of directional links.  At any instant every flow
has a rate determined by **progressive filling** (the textbook max-min
fairness algorithm): all flows' rates grow uniformly until a link
saturates, flows crossing saturated links freeze, and the process
repeats on the residual capacities.  The simulation advances from one
flow-completion event to the next; whenever the active set changes, the
rates are recomputed and the next completion is re-planned.

This is the fluid approximation commonly used for data-centre studies;
it captures exactly the effect the paper's argument depends on — many
concurrent shuffle flows contending for scarce rack uplinks — without
modelling TCP dynamics.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.events import Event, Simulation
from repro.cluster.metrics import TrafficMeter
from repro.cluster.topology import Link, Topology

# Flows with fewer remaining bytes than this are considered complete; it
# absorbs float rounding from repeated progress updates.
_REMAINING_EPS = 1e-6

# Intra-node "transfers" (src == dst) bypass the fabric but still cost a
# memory/loopback copy at this bandwidth.
LOCAL_COPY_BANDWIDTH = 2e9  # bytes/s


@dataclass
class Flow:
    """One in-flight transfer."""

    flow_id: int
    src: int
    dst: int
    size: float
    links: list[Link]
    category: str
    on_complete: Callable[["Flow"], None] | None
    started_at: float
    remaining: float = field(init=False)
    rate: float = field(default=0.0, init=False)
    completed_at: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.remaining = float(self.size)

    @property
    def done(self) -> bool:
        """True once the last byte has landed."""
        return self.completed_at is not None


class FlowNetwork:
    """Tracks active flows on a topology and advances them on the DES clock."""

    def __init__(
        self, sim: Simulation, topology: Topology, meter: TrafficMeter | None = None
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.meter = meter if meter is not None else TrafficMeter()
        self._flows: dict[int, Flow] = {}
        self._ids = itertools.count()
        self._last_update = sim.now
        self._completion_event: Event | None = None
        self._recompute_event: Event | None = None
        self._capacities = np.array(
            [link.capacity for link in topology.links], dtype=float
        )

    @property
    def active_flows(self) -> list[Flow]:
        """Flows currently occupying fabric links."""
        return list(self._flows.values())

    def start_flow(
        self,
        src: int,
        dst: int,
        nbytes: float,
        category: str,
        on_complete: Callable[[Flow], None] | None = None,
    ) -> Flow:
        """Begin transferring ``nbytes`` from ``src`` to ``dst``.

        ``on_complete`` fires (via the simulation) when the last byte
        lands.  Byte accounting happens immediately: the transfer is
        committed once started.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer a negative byte count: {nbytes}")
        links = self.topology.path(src, dst)
        crosses_core = self.topology.crosses_core(src, dst)
        self.meter.record(category, nbytes, crosses_core=crosses_core, on_fabric=bool(links))
        for link in links:
            link.bytes_carried += nbytes

        flow = Flow(
            flow_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(nbytes),
            links=links,
            category=category,
            on_complete=on_complete,
            started_at=self.sim.now,
        )
        if not links:
            # Intra-node: costs a local copy, never contends with the fabric.
            delay = nbytes / LOCAL_COPY_BANDWIDTH
            self.sim.schedule(delay, lambda: self._finish(flow))
            return flow
        if nbytes <= _REMAINING_EPS:
            self.sim.schedule(0.0, lambda: self._finish(flow))
            return flow

        self._advance_progress()
        self._flows[flow.flow_id] = flow
        # Batch rate recomputation: many flows typically start at the
        # same instant (a map task fanning out its shuffle); one
        # recompute after the batch is both faster and equivalent.
        if self._recompute_event is None:
            self._recompute_event = self.sim.schedule(0.0, self._do_recompute)
        return flow

    def _do_recompute(self) -> None:
        self._recompute_event = None
        self._advance_progress()
        self._recompute_rates()
        self._replan()

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Uncontended transfer time (for cost estimation, not simulation)."""
        links = self.topology.path(src, dst)
        if not links:
            return nbytes / LOCAL_COPY_BANDWIDTH
        bottleneck = min(link.capacity for link in links)
        return nbytes / bottleneck

    # ------------------------------------------------------------------
    # internals

    def _advance_progress(self) -> None:
        """Apply each flow's current rate over the elapsed interval."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows.values():
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
        self._last_update = now

    def _recompute_rates(self) -> None:
        """Progressive-filling max-min fair rate allocation (vectorized).

        Paths have at most 4 links, so each flow's link set is a padded
        row of a (flows, 4) id matrix and every filling round reduces to
        a handful of bincount/where operations.  Each round saturates at
        least one link, bounding the round count by the link count (in
        practice a few rounds).
        """
        flows = list(self._flows.values())
        if not flows:
            return
        n = len(flows)
        link_ids = np.full((n, 4), -1, dtype=np.int64)
        for row, flow in enumerate(flows):
            for col, link in enumerate(flow.links):
                link_ids[row, col] = link.link_id
        valid = link_ids >= 0
        clipped = np.where(valid, link_ids, 0)

        num_links = len(self._capacities)
        residual = self._capacities.copy()
        rate = np.zeros(n)
        unfrozen = np.ones(n, dtype=bool)
        for _round in range(num_links + 1):
            if not unfrozen.any():
                break
            flat = link_ids[unfrozen]
            flat = flat[flat >= 0]
            counts = np.bincount(flat, minlength=num_links)
            used = counts > 0
            if not used.any():
                break
            delta = float(np.min(residual[used] / counts[used]))
            rate[unfrozen] += delta
            residual[used] -= delta * counts[used]
            saturated = np.zeros(num_links, dtype=bool)
            saturated[used] = residual[used] <= 1e-9 * self._capacities[used]
            if not saturated.any():
                # Numerically nothing saturated (a tiny residual limited
                # delta); stop to guarantee progress.
                break
            touches_saturated = (saturated[clipped] & valid).any(axis=1)
            newly_frozen = touches_saturated & unfrozen
            if not newly_frozen.any():
                break
            unfrozen &= ~newly_frozen
        for row, flow in enumerate(flows):
            flow.rate = float(rate[row])

    def _replan(self) -> None:
        """Schedule the internal event for the earliest flow completion."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._flows:
            return
        horizon = math.inf
        for flow in self._flows.values():
            if flow.rate > 0:
                horizon = min(horizon, flow.remaining / flow.rate)
        if not math.isfinite(horizon):
            raise RuntimeError(
                "active flows exist but none has a positive rate; "
                "the rate allocation is wedged"
            )
        self._completion_event = self.sim.schedule(horizon, self._on_completion)

    def _on_completion(self) -> None:
        self._completion_event = None
        self._advance_progress()
        finished = [f for f in self._flows.values() if f.remaining <= _REMAINING_EPS]
        for flow in finished:
            del self._flows[flow.flow_id]
        for flow in finished:
            self._finish(flow)
        self._recompute_rates()
        self._replan()

    def _finish(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.completed_at = self.sim.now
        if flow.on_complete is not None:
            flow.on_complete(flow)
