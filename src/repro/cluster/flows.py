"""Flow-level network simulation with max-min fair bandwidth sharing.

Instead of simulating packets, each transfer is a *flow* with a byte
count and a fixed path of directional links.  At any instant every flow
has a rate determined by **progressive filling** (the textbook max-min
fairness algorithm): all flows' rates grow uniformly until a link
saturates, flows crossing saturated links freeze, and the process
repeats on the residual capacities.  The simulation advances from one
flow-completion event to the next; whenever the active set changes, the
rates are recomputed and the next completion is re-planned.

This is the fluid approximation commonly used for data-centre studies;
it captures exactly the effect the paper's argument depends on — many
concurrent shuffle flows contending for scarce rack uplinks — without
modelling TCP dynamics.

**Component scoping.**  Max-min fairness is separable across connected
components of the flow–link incidence graph: a saturated link freezes
only flows crossing it, so the progressive-filling rounds of two
link-disjoint flow sets never interact and each component's allocation
is a function of that component alone (the argument is written out in
``DESIGN.md`` §13).  The network exploits this by maintaining the
components *incrementally*:

* a union-find over link ids merges components when a new flow's path
  bridges them (``_attach``);
* each component record carries its member links, a monotonically
  issued epoch, and its **own** next-completion timer, so an arrival or
  departure in one job never cancels or reschedules another job's
  completion event;
* arrivals mark only the touched component dirty; the batched
  zero-delay recompute then advances/refills *dirty components only*,
  carrying every untouched component's rates (and timer) over;
* departures may split a component.  Splits are detected lazily from a
  standing link-pair adjacency count (each flow contributes the
  consecutive link pairs along its path; a pair dying is the only way
  link connectivity can change), so the common no-split completion
  costs no connectivity scan at all.  Each dead pair gets an
  early-exit reachability probe, and only a genuine disconnection
  re-partitions that component's links by BFS.

Every per-flow quantity advances on its own clock (``_advanced_at`` per
row): progress is applied exactly once per elapsed interval, when the
owning component is next touched, which keeps the arithmetic identical
whether or not unrelated jobs generated events in between.

Internally the active set is **structure-of-arrays** state: ``remaining``
bytes, current ``rate``, completion epsilon, advancement clock, flow id,
and the padded link-id incidence matrix live in standing NumPy arrays
indexed by a dense row number.  Rows are added at the end and removed by
swapping the last row into the hole, so flow add/remove is O(1)
amortized, and every per-event operation (progress advance, horizon
planning, completion scan) is a vectorized pass over the touched
component's rows with no per-flow Python loops.  A standing link → flow
incidence (per-link row arrays, also maintained incrementally) lets each
progressive-filling round touch only the links it saturates and the
flows it freezes.  All completions landing at the same horizon in the
same component drain in a single event.  The arithmetic is
element-for-element the same IEEE operations the per-object
implementation performs on the same component-local operands, so
simulated seconds and byte accounting are bit-identical (see
``tests/cluster/reference_flows.py`` and
``tests/cluster/test_flow_equivalence.py``).
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cluster.events import Event, Simulation
from repro.cluster.metrics import TrafficMeter
from repro.cluster.topology import MAX_PATH_LINKS, Link, Route, Topology

# Flows with fewer remaining bytes than this are considered complete; it
# absorbs float rounding from repeated progress updates.
_REMAINING_EPS = 1e-6

# The absolute epsilon alone is wrong for huge flows: one ULP of a
# multi-GB byte count exceeds 1e-6, so rounding in ``remaining - rate*dt``
# could leave a "finished" flow microscopically short and spawn a cascade
# of near-zero-length completion events.  The completion threshold is
# therefore scale-aware: proportional to the flow size, floored at the
# absolute epsilon for small flows.
_REMAINING_REL_EPS = 1e-9

# Intra-node "transfers" (src == dst) bypass the fabric but still cost a
# memory/loopback copy at this bandwidth.
LOCAL_COPY_BANDWIDTH = 2e9  # bytes/s

# One bulk-start request: (src, dst, nbytes, category[, on_complete]).
FlowRequest = Sequence

# Initial row capacity of the structure-of-arrays state.
_INITIAL_ROWS = 64

# Components with at most this many rows are serviced by scalar
# (pure-Python) loops; bigger ones take the vectorized path.  Both
# perform the exact same IEEE operations element-for-element, so the
# threshold is a pure performance knob with no observable effect — it
# exists because a 12-flow component pays more in NumPy call overhead
# than in arithmetic.
_SMALL_ROWS = 32

# Same idea for the incidence-entry count when collecting a component's
# rows (entries bound rows from above, so this can be tested before the
# row set is known).
_SMALL_ENTRIES = 128


def completion_eps(size: float) -> float:
    """Remaining-byte threshold below which a flow of ``size`` is done."""
    return max(_REMAINING_EPS, _REMAINING_REL_EPS * size)


class Flow:
    """One in-flight transfer.

    While the flow occupies fabric links, its ``remaining`` and ``rate``
    live in the owning :class:`FlowNetwork`'s arrays (``_row`` is the
    index); the properties read through.  Once finished (or for
    intra-node copies that never touch the arrays) the values are plain
    scalars captured at detach time.
    """

    __slots__ = (
        "flow_id", "src", "dst", "size", "links", "category",
        "on_complete", "started_at", "completed_at",
        "_net", "_row", "_remaining", "_rate", "_ptuple",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size: float,
        links: tuple[Link, ...],
        category: str,
        on_complete: Callable[["Flow"], None] | None,
        started_at: float,
        net: "FlowNetwork",
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.links = links
        self.category = category
        self.on_complete = on_complete
        self.started_at = started_at
        self.completed_at: float | None = None
        self._net = net
        self._row = -1
        self._remaining = size
        self._rate = 0.0
        self._ptuple: tuple[int, ...] = ()

    @property
    def remaining(self) -> float:
        """Bytes still to transfer."""
        row = self._row
        if row >= 0:
            return float(self._net._remaining[row])
        return self._remaining

    @remaining.setter
    def remaining(self, value: float) -> None:
        if self._row >= 0:
            self._net._remaining[self._row] = value
        else:
            self._remaining = value

    @property
    def rate(self) -> float:
        """Current max-min fair rate in bytes per second."""
        row = self._row
        if row >= 0:
            return float(self._net._rate[row])
        return self._rate

    @property
    def done(self) -> bool:
        """True once the last byte has landed."""
        return self.completed_at is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.flow_id}, {self.src}->{self.dst}, "
            f"{self.category!r}, {self.size:.0f}B)"
        )


class _Component:
    """One connected component of the active flow–link incidence graph.

    Substrate-private: identified by its union-find root link id, owning
    its member-link list, a stale-timer epoch, and the component's next
    completion event.  Only :class:`FlowNetwork` may touch these.
    """

    __slots__ = ("root", "links", "epoch", "timer", "advanced")

    def __init__(self, root: int, links: list[int], epoch: int) -> None:
        self.root = root
        self.links = links
        self.epoch = epoch
        self.timer: Event | None = None
        # Last simulated time at which every member row's progress was
        # applied, or -inf when unknown (e.g. right after a merge).
        # Lets a same-instant re-advance be skipped outright — advancing
        # a row over a zero-length interval is the identity.
        self.advanced = -math.inf


class FlowNetwork:
    """Tracks active flows on a topology and advances them on the DES clock."""

    def __init__(
        self, sim: Simulation, topology: Topology, meter: TrafficMeter | None = None
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.meter = meter if meter is not None else TrafficMeter()
        self._ids = itertools.count()
        self._recompute_event: Event | None = None
        self._capacities = np.array(
            [link.capacity for link in topology.links], dtype=float
        )
        self._num_links = len(topology.links)
        # Saturation thresholds, fixed per link (multiplying before the
        # per-round gather is bit-identical to multiplying after it).
        self._thresholds = 1e-9 * self._capacities
        # Structure-of-arrays state for the active flow set: rows [0, _n)
        # are live; removal swaps the last row into the hole.  Link-id
        # rows shorter than MAX_PATH_LINKS are padded with the sentinel
        # id ``num_links``: per-link arrays in the filling loop carry one
        # extra never-saturated / never-read slot, so padded entries need
        # no validity masking anywhere.
        self._remaining = np.zeros(_INITIAL_ROWS)
        self._rate = np.zeros(_INITIAL_ROWS)
        self._eps = np.zeros(_INITIAL_ROWS)
        # Per-row advancement clock: the last simulated time at which
        # this row's progress was applied.  Rows advance lazily, when
        # their component is next touched.
        self._advanced_at = np.zeros(_INITIAL_ROWS)
        self._flow_ids = np.zeros(_INITIAL_ROWS, dtype=np.int64)
        self._link_ids = np.full(
            (_INITIAL_ROWS, MAX_PATH_LINKS), self._num_links, dtype=np.int64
        )
        self._row_flows: list[Flow | None] = [None] * _INITIAL_ROWS
        self._n = 0
        # Standing link -> flow incidence, maintained by _attach/_detach:
        # for each link, a dense array of the active rows crossing it
        # (amortized-doubling capacity, swap-remove within the segment).
        # ``_link_cols[l][p]`` records which path slot of row
        # ``_link_rows[l][p]`` refers to link ``l``, and ``_pos[row, k]``
        # is that entry's position, so removals and row renumbering stay
        # O(1) per slot.  Rate recomputation reads the segments directly
        # instead of rebuilding any incidence structure.
        self._link_rows: list[np.ndarray] = [
            np.empty(4, dtype=np.int64) for _ in range(self._num_links + 1)
        ]
        self._link_cols: list[np.ndarray] = [
            np.empty(4, dtype=np.int8) for _ in range(self._num_links + 1)
        ]
        self._link_sizes: list[int] = [0] * (self._num_links + 1)
        self._pos = np.zeros((_INITIAL_ROWS, MAX_PATH_LINKS), dtype=np.int64)
        # Scratch freeze flags for progressive filling, indexed by row;
        # reset only for the refilled component's rows on entry.
        self._frozen = np.zeros(_INITIAL_ROWS, dtype=bool)
        # Scratch membership mask for row collection; always False
        # outside `_component_rows` (set and reset within the call).
        self._member = np.zeros(_INITIAL_ROWS, dtype=bool)
        # -- component tracking (substrate-private) --------------------
        # Union-find parent per link id; roots key the component map.
        self._uf_parent: list[int] = list(range(self._num_links))
        self._comp: dict[int, _Component] = {}
        self._comp_epochs = itertools.count()
        # Links (any member) whose components need an advance + refill
        # at the next batched recompute.
        self._dirty_links: set[int] = set()
        # Link-pair adjacency counts: ``_adj[a][b]`` is the number of
        # active flows whose paths traverse ``a`` and ``b`` back to
        # back (a chain per path, which preserves exactly link
        # connectivity).  A pair count reaching zero is the only way a
        # component can lose connectivity; each death is recorded in
        # ``_dead_pairs`` and its endpoints get a cheap early-exit
        # reachability test before the full BFS re-partition runs.
        self._adj: list[dict[int, int]] = [{} for _ in range(self._num_links)]
        self._dead_pairs: list[tuple[int, int]] = []

    @property
    def active_flows(self) -> list[Flow]:
        """Flows currently occupying fabric links (in start order)."""
        flows = [f for f in self._row_flows[: self._n] if f is not None]
        flows.sort(key=lambda f: f.flow_id)
        return flows

    def start_flow(
        self,
        src: int,
        dst: int,
        nbytes: float,
        category: str,
        on_complete: Callable[[Flow], None] | None = None,
    ) -> Flow:
        """Begin transferring ``nbytes`` from ``src`` to ``dst``.

        ``on_complete`` fires (via the simulation) when the last byte
        lands.  Byte accounting happens immediately: the transfer is
        committed once started.
        """
        flow = self._begin(src, dst, nbytes, category, on_complete)
        # Batch rate recomputation: many flows typically start at the
        # same instant (a map task fanning out its shuffle); one
        # recompute after the batch is both faster and equivalent.
        if flow._row >= 0 and self._recompute_event is None:
            self._recompute_event = self.sim.schedule(0.0, self._do_recompute)
        return flow

    def start_flows(self, requests: Iterable[FlowRequest]) -> list[Flow]:
        """Begin a batch of transfers in one call.

        Each request is ``(src, dst, nbytes, category)`` optionally
        followed by an ``on_complete`` callback.  Event ordering, flow
        ids, and all floats are identical to calling :meth:`start_flow`
        once per request — this exists so a map wave's shuffle fan-out
        (or a PIC scatter) crosses the network API once per wave, not
        once per flow, and shares a single rate recompute.
        """
        flows: list[Flow] = []
        schedule = self.sim.schedule
        for req in requests:
            on_complete = req[4] if len(req) > 4 else None
            flow = self._begin(req[0], req[1], req[2], req[3], on_complete)
            if flow._row >= 0 and self._recompute_event is None:
                self._recompute_event = schedule(0.0, self._do_recompute)
            flows.append(flow)
        return flows

    def _begin(
        self,
        src: int,
        dst: int,
        nbytes: float,
        category: str,
        on_complete: Callable[[Flow], None] | None,
    ) -> Flow:
        if nbytes < 0:
            raise ValueError(f"cannot transfer a negative byte count: {nbytes}")
        route = self.topology.route(src, dst)
        links = route.links
        self.meter.record(
            category, nbytes, crosses_core=route.crosses_core, on_fabric=bool(links)
        )
        for link in links:
            link.bytes_carried += nbytes

        flow = Flow(
            flow_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(nbytes),
            links=links,
            category=category,
            on_complete=on_complete,
            started_at=self.sim.now,
            net=self,
        )
        if not links:
            # Intra-node: costs a local copy, never contends with the fabric.
            delay = nbytes / LOCAL_COPY_BANDWIDTH
            self.sim.schedule(delay, lambda: self._finish(flow))
            return flow
        if nbytes <= _REMAINING_EPS:
            self.sim.schedule(0.0, lambda: self._finish(flow))
            return flow

        self._attach(flow, route)
        return flow

    def _do_recompute(self) -> None:
        """Advance + refill + re-plan every dirty component.

        Runs as the batched zero-delay event after a wave of arrivals.
        With nothing marked dirty (a direct call, e.g. from tests that
        force recompute churn) it refreshes *all* components, which is
        the old global-recompute behaviour.
        """
        self._recompute_event = None
        if self._dirty_links:
            roots = {self._find(link) for link in self._dirty_links}
            self._dirty_links.clear()
        else:
            roots = set(self._comp.keys())
        planned: list[tuple[int, _Component, list[int] | np.ndarray]] = []
        for root in sorted(roots):
            comp = self._comp.get(root)
            if comp is None:
                continue
            rows = self._component_rows(comp)
            if len(rows) == 0:  # pragma: no cover - defensive
                continue
            planned.append((self._min_flow_id(rows), comp, rows))
        # Canonical processing order — ascending min flow id — keeps the
        # timer (re)arming sequence, and therefore same-instant event
        # order, identical to the reference implementation.
        planned.sort(key=lambda item: item[0])
        for _, comp, rows in planned:
            self._advance_component(comp, rows)
            self._refill_component(comp, rows)
            self._plan_component(comp, rows)

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Uncontended transfer time (for cost estimation, not simulation)."""
        route = self.topology.route(src, dst)
        if not route.links:
            return nbytes / LOCAL_COPY_BANDWIDTH
        return nbytes / route.bottleneck

    # ------------------------------------------------------------------
    # structure-of-arrays row management

    def _attach(self, flow: Flow, route: Route) -> None:
        """Claim the next dense row for ``flow``; O(1) amortized."""
        i = self._n
        if i == len(self._row_flows):
            self._grow()
        self._remaining[i] = flow._remaining
        self._rate[i] = 0.0
        self._eps[i] = completion_eps(flow.size)
        self._advanced_at[i] = self.sim.now
        self._flow_ids[i] = flow.flow_id
        self._link_ids[i] = route.padded_ids
        ptuple = route.padded_tuple
        flow._ptuple = ptuple
        sentinel = self._num_links
        link_rows = self._link_rows
        link_sizes = self._link_sizes
        pos = self._pos
        for k in range(MAX_PATH_LINKS):
            link = ptuple[k]
            if link == sentinel:
                break
            size = link_sizes[link]
            arr = link_rows[link]
            if size == arr.size:
                arr = self._grow_link(link)
            arr[size] = i
            self._link_cols[link][size] = k
            pos[i, k] = size
            link_sizes[link] = size + 1
        self._row_flows[i] = flow
        flow._row = i
        self._n = i + 1
        self._join_components(ptuple)

    def _detach(self, flow: Flow) -> None:
        """Release ``flow``'s row, compacting by swapping the last row in."""
        i = flow._row
        flow._remaining = float(self._remaining[i])
        flow._rate = float(self._rate[i])
        flow._row = -1
        sentinel = self._num_links
        link_rows = self._link_rows
        link_cols = self._link_cols
        link_sizes = self._link_sizes
        pos = self._pos
        # Drop the flow's incidence entries, swap-removing within each
        # link segment (same-rack pad slots were never inserted).
        for k in range(MAX_PATH_LINKS):
            link = flow._ptuple[k]
            if link == sentinel:
                break
            p = pos[i, k]
            size = link_sizes[link] - 1
            arr = link_rows[link]
            if p != size:
                cols = link_cols[link]
                moved_row = arr[size]
                moved_col = cols[size]
                arr[p] = moved_row
                cols[p] = moved_col
                pos[moved_row, moved_col] = p
            link_sizes[link] = size
        self._drop_pairs(flow._ptuple)
        last = self._n - 1
        if i != last:
            self._remaining[i] = self._remaining[last]
            self._rate[i] = self._rate[last]
            self._eps[i] = self._eps[last]
            self._advanced_at[i] = self._advanced_at[last]
            self._flow_ids[i] = self._flow_ids[last]
            self._link_ids[i] = self._link_ids[last]
            self._pos[i] = self._pos[last]
            moved = self._row_flows[last]
            assert moved is not None
            self._row_flows[i] = moved
            moved._row = i
            # The swapped-in flow changed row number; renumber its
            # incidence entries.
            for k in range(MAX_PATH_LINKS):
                link = moved._ptuple[k]
                if link == sentinel:
                    break
                link_rows[link][pos[i, k]] = i
        self._row_flows[last] = None
        self._n = last

    def _grow(self) -> None:
        old = len(self._row_flows)
        new = 2 * old
        for name in ("_remaining", "_rate", "_eps", "_advanced_at"):
            grown = np.zeros(new)
            grown[:old] = getattr(self, name)
            setattr(self, name, grown)
        fids = np.zeros(new, dtype=np.int64)
        fids[:old] = self._flow_ids
        self._flow_ids = fids
        lids = np.full((new, MAX_PATH_LINKS), self._num_links, dtype=np.int64)
        lids[:old] = self._link_ids
        self._link_ids = lids
        grown_pos = np.zeros((new, MAX_PATH_LINKS), dtype=np.int64)
        grown_pos[:old] = self._pos
        self._pos = grown_pos
        self._frozen = np.zeros(new, dtype=bool)
        self._member = np.zeros(new, dtype=bool)
        self._row_flows.extend([None] * (new - old))

    def _grow_link(self, link: int) -> np.ndarray:
        old = self._link_rows[link]
        grown = np.empty(2 * old.size, dtype=np.int64)
        grown[: old.size] = old
        self._link_rows[link] = grown
        old_cols = self._link_cols[link]
        grown_cols = np.empty(2 * old_cols.size, dtype=np.int8)
        grown_cols[: old_cols.size] = old_cols
        self._link_cols[link] = grown_cols
        return grown

    # ------------------------------------------------------------------
    # component tracking

    def _find(self, link: int) -> int:
        """Union-find root of ``link``, with path compression."""
        parent = self._uf_parent
        root = link
        while parent[root] != root:
            root = parent[root]
        while parent[link] != root:
            parent[link], link = root, parent[link]
        return root

    def _join_components(self, ptuple: tuple[int, ...]) -> None:
        """Register a new flow's path: pair counts, unions, dirty mark.

        The path's links are welded into one component (merging records
        small-into-large; absorbed timers are cancelled — the merged
        component is refilled and re-armed by the pending recompute).
        """
        sentinel = self._num_links
        first = ptuple[0]
        adj = self._adj
        prev = first
        for k in range(1, MAX_PATH_LINKS):
            link = ptuple[k]
            if link == sentinel:
                break
            adj_prev = adj[prev]
            adj_prev[link] = adj_prev.get(link, 0) + 1
            adj_link = adj[link]
            adj_link[prev] = adj_link.get(prev, 0) + 1
            prev = link
        comps = self._comp
        parent = self._uf_parent
        root = self._find(first)
        comp = comps.get(root)
        if comp is None:
            comp = _Component(root, [root], next(self._comp_epochs))
            comps[root] = comp
        for k in range(1, MAX_PATH_LINKS):
            link = ptuple[k]
            if link == sentinel:
                break
            other_root = self._find(link)
            if other_root == root:
                continue
            other = comps.get(other_root)
            if other is None:
                # A fresh (or previously emptied) link: adopt it.
                parent[other_root] = root
                comp.links.append(other_root)
                continue
            # Merge the smaller record into the larger one.
            if len(other.links) > len(comp.links):
                comp, other = other, comp
                root, other_root = other_root, root
            parent[other_root] = root
            comp.links.extend(other.links)
            if other.advanced < comp.advanced:
                comp.advanced = other.advanced
            if other.timer is not None:
                other.timer.cancel()
                other.timer = None
            del comps[other_root]
        self._dirty_links.add(first)

    def _drop_pairs(self, ptuple: tuple[int, ...]) -> None:
        """Release a detaching flow's link-pair counts."""
        sentinel = self._num_links
        adj = self._adj
        prev = ptuple[0]
        for k in range(1, MAX_PATH_LINKS):
            link = ptuple[k]
            if link == sentinel:
                break
            adj_prev = adj[prev]
            count = adj_prev[link] - 1
            if count:
                adj_prev[link] = count
                adj[link][prev] = count
            else:
                del adj_prev[link]
                del adj[link][prev]
                self._dead_pairs.append((prev, link))
            prev = link

    def _component_rows(self, comp: _Component) -> list[int] | np.ndarray:
        """Sorted active rows of ``comp`` (from the link segments).

        Small components come back as plain Python lists (their
        consumers are the scalar code paths, which would only convert
        an array right back); large ones as int64 arrays.
        """
        if len(self._comp) == 1:
            # Every active fabric flow belongs to some component, so a
            # lone component owns every row.
            return np.arange(self._n, dtype=np.int64)
        link_rows = self._link_rows
        link_sizes = self._link_sizes
        entries = 0
        for link in comp.links:
            entries += link_sizes[link]
        if entries <= _SMALL_ENTRIES:
            seen: set[int] = set()
            for link in comp.links:
                size = link_sizes[link]
                if size:
                    seen.update(link_rows[link][:size].tolist())
            if len(seen) <= _SMALL_ROWS:
                return sorted(seen)
            return np.array(sorted(seen), dtype=np.int64)
        segments = [
            link_rows[link][: link_sizes[link]]
            for link in comp.links
            if link_sizes[link] > 0
        ]
        flat = segments[0] if len(segments) == 1 else np.concatenate(segments)
        # Dedupe through the scratch mask: much cheaper than np.unique's
        # hash/sort and yields the same sorted row order via nonzero.
        member = self._member
        member[flat] = True
        rows = np.nonzero(member[: self._n])[0]
        member[flat] = False
        return rows

    def _min_flow_id(self, rows: list[int] | np.ndarray) -> int:
        """Smallest flow id among ``rows`` (the canonical-order key)."""
        if isinstance(rows, list):
            flow_ids = self._flow_ids
            return int(min(flow_ids[row] for row in rows))
        return int(self._flow_ids[rows].min())

    def _still_connected(self, a: int, b: int) -> bool:
        """Exact reachability of ``b`` from ``a`` in the link-pair graph.

        Early-exits the moment ``b`` is seen, so in well-connected
        components (where most pair deaths change nothing) this touches
        a couple of adjacency lists instead of the whole component.
        """
        adj = self._adj
        seen = {a}
        frontier = [a]
        while frontier:
            node = frontier.pop()
            for neighbour in adj[node]:
                if neighbour == b:
                    return True
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False

    def _split_component(self, comp: _Component) -> None:
        """Re-partition ``comp``'s records after departures broke a pair.

        BFS over the surviving link-pair adjacency discovers the
        sub-components; emptied links revert to singleton union-find
        roots.  Each sub-component gets a fresh record (new epoch, so
        any stale timer is disarmed) and is marked dirty — the batched
        recompute refills and re-plans them in canonical order.
        """
        del self._comp[comp.root]
        parent = self._uf_parent
        link_sizes = self._link_sizes
        adj = self._adj
        dirty = self._dirty_links
        visited: set[int] = set()
        for link in comp.links:
            if link in visited:
                continue
            visited.add(link)
            if link_sizes[link] == 0:
                # Dead link: no flows, hence no pairs; detach it.
                parent[link] = link
                continue
            group = [link]
            stack = [link]
            while stack:
                node = stack.pop()
                for neighbour in adj[node]:
                    if neighbour not in visited:
                        visited.add(neighbour)
                        group.append(neighbour)
                        stack.append(neighbour)
            root = min(group)
            for member in group:
                parent[member] = root
            sub = _Component(root, group, next(self._comp_epochs))
            sub.advanced = comp.advanced
            self._comp[root] = sub
            dirty.add(root)

    # ------------------------------------------------------------------
    # internals

    def _advance_component(
        self, comp: _Component, rows: list[int] | np.ndarray
    ) -> None:
        """Advance ``comp``'s rows, skipping a same-instant re-advance.

        The skip is a pure shortcut: advancing over a zero-length
        interval subtracts ``rate * 0.0`` and is bit-for-bit the
        identity, so the reference implementation may advance
        unconditionally and still agree.
        """
        now = self.sim.now
        if comp.advanced == now:
            return
        self._advance_rows(rows)
        comp.advanced = now

    def _advance_rows(self, rows: list[int] | np.ndarray) -> None:
        """Apply each row's current rate since its last advancement.

        Three equivalent code paths (scalar, full-slice, gather) — all
        compute ``max(0, remaining - rate*(now - advanced_at))`` with
        the same IEEE operations per row.
        """
        now = self.sim.now
        remaining = self._remaining
        rate = self._rate
        advanced_at = self._advanced_at
        if isinstance(rows, list):
            for row in rows:
                value = remaining[row] - rate[row] * (now - advanced_at[row])
                remaining[row] = value if value > 0.0 else 0.0
                advanced_at[row] = now
            return
        size = rows.size
        if size == 0:  # pragma: no cover - defensive
            return
        if size == self._n:
            rem = remaining[:size]
            rem -= rate[:size] * (now - advanced_at[:size])
            np.maximum(rem, 0.0, out=rem)
            advanced_at[:size] = now
            return
        rem = remaining[rows]
        rem -= rate[rows] * (now - advanced_at[rows])
        np.maximum(rem, 0.0, out=rem)
        remaining[rows] = rem
        advanced_at[rows] = now

    def _refill_component(
        self, comp: _Component, rows: list[int] | np.ndarray
    ) -> None:
        """Progressive-filling max-min fair rates, scoped to one component.

        Dispatches between a scalar and a vectorized path on component
        size; both perform the same component-local IEEE operations.
        The fill level is the same left-to-right sum of the same
        component-local round deltas the textbook formulation
        accumulates per flow, and the counts/residual updates are the
        same integer/IEEE operations, so the resulting rates are
        bit-identical to the reference implementation
        (``tests/cluster/reference_flows.py``).

        Every flow crossing a member link belongs to the component (that
        is what a component *is*), so the global per-link segment sizes
        double as the component-local counts.
        """
        if isinstance(rows, list):
            self._refill_small(comp, rows)
        else:
            self._refill_large(comp, rows)

    def _refill_small(self, comp: _Component, rows: list[int]) -> None:
        """Scalar progressive filling for small components.

        Same round structure as :meth:`_refill_large` — uniform fill
        until a link saturates, freeze its flows at the cumulative fill
        level, drop the link, repeat on the residual — with plain
        Python loops, because a handful of rows costs more in NumPy
        call overhead than in arithmetic.
        """
        link_sizes = self._link_sizes
        link_rows = self._link_rows
        occupied = sorted(link for link in comp.links if link_sizes[link] > 0)
        capacities = self._capacities
        all_thresholds = self._thresholds
        residual = [float(capacities[link]) for link in occupied]
        thresholds = [float(all_thresholds[link]) for link in occupied]
        counts = [link_sizes[link] for link in occupied]
        local_of = {link: j for j, link in enumerate(occupied)}
        rate = self._rate
        row_flows = self._row_flows
        sentinel = self._num_links
        total = len(rows)
        frozen: set[int] = set()
        alive = list(range(len(occupied)))
        fill = 0.0
        while alive:
            delta = math.inf
            for j in alive:
                count = counts[j]
                if count > 0:
                    ratio = residual[j] / count
                    if ratio < delta:
                        delta = ratio
            fill += delta
            saturated = []
            for j in alive:
                count = counts[j]
                if count:
                    residual[j] -= delta * count
                if residual[j] <= thresholds[j]:
                    saturated.append(j)
            if not saturated:
                break
            newly: list[int] = []
            for j in saturated:
                link = occupied[j]
                for row in link_rows[link][: link_sizes[link]].tolist():
                    if row not in frozen:
                        frozen.add(row)
                        newly.append(row)
            if not newly:  # pragma: no cover - numeric corner
                break
            for row in newly:
                rate[row] = fill
            if len(frozen) == total:
                return
            for row in newly:
                flow = row_flows[row]
                assert flow is not None
                for link in flow._ptuple:
                    if link == sentinel:
                        break
                    counts[local_of[link]] -= 1
            dropped = set(saturated)
            alive = [j for j in alive if j not in dropped]
        for row in rows:
            if row not in frozen:
                rate[row] = fill

    def _refill_large(self, comp: _Component, rows: np.ndarray) -> None:
        """Vectorized progressive filling (the compacting scheme).

        Each filling round works on a *compacted* view of the
        still-unfrozen links, per-link flow counts are maintained by
        subtraction as flows freeze rather than recounted, and a flow's
        rate is written exactly once — the cumulative fill level at the
        round it froze.

        Saturation flags accumulate across rounds: once a link saturates
        every unfrozen flow crossing it freezes in that same round, so no
        surviving flow can ever touch a previously saturated link.
        """
        link_sizes = self._link_sizes
        num_links = self._num_links
        # Global-width count array (one C call), with the active view
        # restricted to the component's occupied links.  Entries for
        # other components' links stay nonzero but are never read: the
        # freeze loop and the bincount decrement only ever touch member
        # links (every flow on a member link belongs to the component).
        # ``counts[num_links]`` is the sentinel slot absorbing padded
        # link ids; written, never read.
        counts = np.array(link_sizes, dtype=np.int64)
        members = np.array(comp.links, dtype=np.int64)
        active = np.sort(members[counts[members] > 0])
        residual = self._capacities[active]
        thresholds = self._thresholds[active]
        active_counts = counts[active]
        link_ids = self._link_ids
        link_rows = self._link_rows
        rate = self._rate
        frozen = self._frozen
        full = len(rows) == self._n
        if full:
            frozen[: self._n] = False
        else:
            frozen[rows] = False
        unfrozen = len(rows)
        fill = 0.0
        # A link whose flows all froze through *other* links keeps a
        # zero count; its inf ratio never wins the min and it can never
        # saturate afterwards, so it may idle in the active arrays.
        with np.errstate(divide="ignore"):
            for _round in range(active.size + 1):
                if active.size == 0:  # pragma: no cover - numeric corner
                    break
                delta = float((residual / active_counts).min())
                fill += delta
                residual -= delta * active_counts
                saturated = residual <= thresholds
                if not saturated.any():
                    # Numerically nothing saturated (a tiny residual
                    # limited delta); stop to guarantee progress.
                    break
                # Freeze every still-active flow crossing a saturated
                # link at the current fill level (the same left-to-right
                # delta sum the per-flow accumulation would produce).
                # Links are processed one at a time with ``frozen``
                # updated in between, so a flow on two same-round
                # saturated links is collected exactly once and no
                # dedupe pass is ever needed.
                news = []
                for lk in active[saturated]:
                    seg = link_rows[lk][: link_sizes[lk]]
                    fresh = seg[~frozen[seg]]
                    if fresh.size:
                        frozen[fresh] = True
                        news.append(fresh)
                if not news:  # pragma: no cover - numeric corner
                    break
                newly = news[0] if len(news) == 1 else np.concatenate(news)
                rate[newly] = fill
                unfrozen -= newly.size
                if unfrozen == 0:
                    # Everything froze; the remaining rounds would only
                    # drain counts that no flow reads any more.
                    return
                counts -= np.bincount(
                    link_ids[newly].ravel(), minlength=num_links + 1
                )
                keep = ~saturated
                active = active[keep]
                residual = residual[keep]
                thresholds = thresholds[keep]
                active_counts = counts[active]
        # Whatever never froze runs at the final fill level.
        if full:
            n = self._n
            rate[:n][~frozen[:n]] = fill
        else:
            rate[rows[~frozen[rows]]] = fill

    def _plan_component(
        self, comp: _Component, rows: list[int] | np.ndarray
    ) -> None:
        """Arm ``comp``'s next-completion timer from its current rates."""
        if comp.timer is not None:
            comp.timer.cancel()
            comp.timer = None
        if isinstance(rows, list):
            remaining = self._remaining
            rate = self._rate
            horizon = math.inf
            for row in rows:
                row_rate = rate[row]
                if row_rate > 0:
                    candidate = remaining[row] / row_rate
                    if candidate < horizon:
                        horizon = candidate
            horizon = float(horizon)
        else:
            if rows.size == self._n:
                rates = self._rate[: self._n]
                remainings = self._remaining[: self._n]
            else:
                rates = self._rate[rows]
                remainings = self._remaining[rows]
            positive = rates > 0
            if not positive.any():
                raise RuntimeError(
                    "active flows exist but none has a positive rate; "
                    "the rate allocation is wedged"
                )
            horizon = float(np.min(remainings[positive] / rates[positive]))
        if not math.isfinite(horizon):
            raise RuntimeError(
                "active flows exist but none has a positive rate; "
                "the rate allocation is wedged"
            )
        root = comp.root
        epoch = comp.epoch
        self._arm_component_timer(
            comp, horizon, lambda: self._on_component_completion(root, epoch)
        )

    def _arm_component_timer(
        self, comp: _Component, horizon: float, on_fire: Callable[[], None]
    ) -> None:
        """Schedule ``on_fire`` as ``comp``'s completion continuation."""
        comp.timer = self.sim.schedule(horizon, on_fire)

    def _on_component_completion(self, root: int, epoch: int) -> None:
        comp = self._comp.get(root)
        if comp is None or comp.epoch != epoch:  # pragma: no cover - stale
            return
        comp.timer = None
        rows = self._component_rows(comp)
        self._advance_component(comp, rows)
        # Drain *every* flow of this component that reached its
        # completion threshold at this horizon in one event
        # (same-horizon batching): one scan, one refill, one replan for
        # the whole batch — without touching any other component.
        remaining = self._remaining
        eps = self._eps
        if isinstance(rows, list):
            done_rows = [row for row in rows if remaining[row] <= eps[row]]
        elif rows.size == self._n:
            n = self._n
            done_rows = np.nonzero(remaining[:n] <= eps[:n])[0].tolist()
        else:
            done_rows = rows[remaining[rows] <= eps[rows]].tolist()
        finished: list[Flow] = []
        for i in done_rows:
            flow = self._row_flows[i]
            assert flow is not None
            finished.append(flow)
        finished.sort(key=lambda f: f.flow_id)
        self._dead_pairs.clear()
        for flow in finished:
            self._detach(flow)
        if len(finished) == len(rows):
            # The whole component drained; release its links.
            parent = self._uf_parent
            for link in comp.links:
                parent[link] = link
            del self._comp[root]
        else:
            if any(
                not self._still_connected(a, b) for a, b in self._dead_pairs
            ):
                # A dead pair actually disconnected the link graph;
                # re-partition the records (bookkeeping only).
                self._split_component(comp)
            else:
                self._dirty_links.add(comp.root)
            # Survivors are refilled + re-planned by the batched
            # zero-delay recompute, not inline: completion callbacks run
            # first and often start successor flows at this same
            # instant, and deferring folds their arrival into the same
            # single refill.  No simulated time passes in between, so
            # the arithmetic is unchanged.
            if self._recompute_event is None:
                self._recompute_event = self.sim.schedule(0.0, self._do_recompute)
        for flow in finished:
            self._finish(flow)

    def _finish(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.completed_at = self.sim.now
        if flow.on_complete is not None:
            flow.on_complete(flow)
