"""Traffic and time accounting.

The paper's headline evidence (Figure 2 right, Table II) is byte counts
by *category*: MapReduce intermediate (shuffle) data versus model
updates, with bisection traffic called out separately.  The
:class:`TrafficMeter` is the single ledger every transfer in the
simulator reports to, keyed by a free-form category string; the standard
categories used throughout the library are listed in
:class:`TrafficCategory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TrafficCategory:
    """Canonical category names used by the MapReduce/DFS/PIC layers."""

    INPUT = "input"               # reading input splits (DFS → mapper)
    SHUFFLE = "shuffle"           # map output → reducers (intermediate data)
    MODEL_UPDATE = "model_update" # writing the refined model to the DFS
    MODEL_READ = "model_read"     # distributing the current model to tasks
    DFS_WRITE = "dfs_write"       # other DFS writes (incl. replication)
    DFS_READ = "dfs_read"         # other DFS reads
    MERGE = "merge"               # PIC merge-phase traffic
    REPARTITION = "repartition"   # PIC best-effort data co-location (one-time)
    CONTROL = "control"           # job bookkeeping (tiny)

    ALL = (
        INPUT, SHUFFLE, MODEL_UPDATE, MODEL_READ,
        DFS_WRITE, DFS_READ, MERGE, REPARTITION, CONTROL,
    )


@dataclass(slots=True)
class _CategoryTotals:
    """Accumulated byte/transfer counts for one category."""

    total_bytes: float = 0.0
    fabric_bytes: float = 0.0
    core_bytes: float = 0.0
    transfers: int = 0


@dataclass
class TrafficMeter:
    """Accumulates byte counts per category and per network tier."""

    _totals: dict[str, _CategoryTotals] = field(default_factory=dict)

    def record(
        self, category: str, nbytes: float, *, crosses_core: bool, on_fabric: bool = True
    ) -> None:
        """Record one transfer.

        ``on_fabric`` is False for intra-node copies: they count toward
        the category total (the data existed) but not toward network
        traffic — mirroring how Hadoop counters distinguish local from
        rack/remote bytes.
        """
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        # get-then-insert instead of setdefault: record() runs once per
        # flow, and setdefault would allocate a throwaway _CategoryTotals
        # on every hit.
        totals = self._totals.get(category)
        if totals is None:
            totals = self._totals[category] = _CategoryTotals()
        totals.total_bytes += nbytes
        totals.transfers += 1
        if on_fabric:
            totals.fabric_bytes += nbytes
            if crosses_core:
                totals.core_bytes += nbytes

    def total(self, category: str) -> float:
        """All bytes recorded under ``category`` (including intra-node)."""
        return self._totals.get(category, _CategoryTotals()).total_bytes

    def fabric(self, category: str) -> float:
        """Bytes under ``category`` that traversed at least one link."""
        return self._totals.get(category, _CategoryTotals()).fabric_bytes

    def bisection(self, category: str) -> float:
        """Bytes under ``category`` that crossed the core (rack-to-rack)."""
        return self._totals.get(category, _CategoryTotals()).core_bytes

    def transfers(self, category: str) -> int:
        """Number of transfers recorded under ``category``."""
        return self._totals.get(category, _CategoryTotals()).transfers

    def grand_total(self) -> float:
        """All bytes recorded across every category."""
        return sum(t.total_bytes for t in self._totals.values())

    def categories(self) -> list[str]:
        """Recorded category names, sorted."""
        return sorted(self._totals)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """A plain-dict copy for reports and assertions."""
        return {
            cat: {
                "total_bytes": t.total_bytes,
                "fabric_bytes": t.fabric_bytes,
                "core_bytes": t.core_bytes,
                "transfers": float(t.transfers),
            }
            for cat, t in self._totals.items()
        }

    def absorb(self, other: "TrafficMeter") -> None:
        """Fold another meter's totals into this one.

        Used when a PIC sub-problem runs on a sandboxed sub-cluster: its
        (purely local) traffic still belongs in the experiment's ledger.
        """
        for cat, theirs in other._totals.items():
            mine = self._totals.setdefault(cat, _CategoryTotals())
            mine.total_bytes += theirs.total_bytes
            mine.fabric_bytes += theirs.fabric_bytes
            mine.core_bytes += theirs.core_bytes
            mine.transfers += theirs.transfers

    def diff(self, earlier: dict[str, dict[str, float]]) -> dict[str, dict[str, float]]:
        """Per-category deltas since an earlier :meth:`snapshot`."""
        current = self.snapshot()
        out: dict[str, dict[str, float]] = {}
        for cat, fields in current.items():
            base = earlier.get(cat, {})
            out[cat] = {k: v - base.get(k, 0.0) for k, v in fields.items()}
        return out
