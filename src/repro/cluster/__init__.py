"""Deterministic discrete-event cluster simulator.

This package substitutes for the paper's physical Hadoop clusters.  It
provides:

* :mod:`repro.cluster.events` — a cancellable-event discrete-event
  simulation core (the simulated clock every other layer runs on);
* :mod:`repro.cluster.topology` — nodes with task slots, racks, and a
  two-tier (edge/core) network described as capacitated links;
* :mod:`repro.cluster.flows` — a flow-level network model with max-min
  fair bandwidth sharing (progressive filling), which turns "move N bytes
  from node A to node B" into simulated elapsed time;
* :mod:`repro.cluster.metrics` — per-category and per-tier byte
  accounting (shuffle vs model updates vs DFS traffic, bisection bytes);
* :mod:`repro.cluster.presets` — the paper's three testbeds: the 6-node
  research cluster, the 64-node 6-rack production cluster, and the
  256-node EMR-style virtual cluster.
"""

from repro.cluster.events import Simulation, Event
from repro.cluster.topology import NodeSpec, Node, Topology, Link
from repro.cluster.flows import FlowNetwork, Flow
from repro.cluster.metrics import TrafficMeter, TrafficCategory
from repro.cluster.cache import CachePin, CacheStats, NodeMemoryCache
from repro.cluster.cluster import Cluster
from repro.cluster.presets import small_cluster, medium_cluster, large_cluster

__all__ = [
    "Simulation",
    "Event",
    "NodeSpec",
    "Node",
    "Topology",
    "Link",
    "FlowNetwork",
    "Flow",
    "TrafficMeter",
    "TrafficCategory",
    "CachePin",
    "CacheStats",
    "NodeMemoryCache",
    "Cluster",
    "small_cluster",
    "medium_cluster",
    "large_cluster",
]
