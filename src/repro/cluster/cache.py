"""Simulated per-node memory cache for loop-invariant data.

Iterative frameworks of the Spark/HaLoop era keep loop-invariant
inputs resident in executor memory so only the first iteration pays
the scan.  This module models that residency on the simulated cluster:
each node gets a byte budget (a fraction of its ``NodeSpec.ram_bytes``,
the in-memory-ratio knob), entries are inserted when data is first
materialized on the node, later lookups hit for free, and when the
budget runs out the least-recently-used *unpinned* entry is evicted.

Two operations reserve space:

* :meth:`NodeMemoryCache.put` marks an entry resident after its bytes
  were actually moved/charged — a hit can only ever replay a read the
  simulation already paid for once, which is what keeps pipelined
  byte totals comparable to barrier-mode runs;
* :meth:`NodeMemoryCache.pin` reserves the entry and protects it from
  eviction until the returned :class:`CachePin` is released.  Pins are
  owned handles (``pic-lint`` tracks their lifecycle like shm blocks):
  release exactly once, on every path.

Counters (hits/misses/evictions) feed the per-iteration stats the
engine and driver report.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.cluster import Cluster

CACHE_RATIO_ENV_VAR = "PIC_CACHE_RATIO"

#: Fraction of each node's RAM available for loop-invariant caching.
#: Half mirrors the default executor-memory split of the era's engines.
DEFAULT_CACHE_RATIO = 0.5

#: A cache entry's identity: (dataset path, split index).
CacheKey = tuple[str, int]


def cache_ratio() -> float:
    """The in-memory-ratio knob (``PIC_CACHE_RATIO``, clamped to [0, 1])."""
    raw = os.environ.get(CACHE_RATIO_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_CACHE_RATIO
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_CACHE_RATIO
    return min(max(value, 0.0), 1.0)


@dataclass(frozen=True)
class CacheStats:
    """Monotonic cache counters (diffable per iteration)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
        )


class _Entry:
    """Book-keeping for one cached object on one node."""

    __slots__ = ("nbytes", "resident", "pins")

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes
        self.resident = False
        self.pins = 0


class CachePin:
    """Owned handle protecting one cache entry from eviction.

    Created only by :meth:`NodeMemoryCache.pin`.  Must be released
    exactly once; releasing twice raises, mirroring the simulator's
    slot over-release guard.  Usable as a context manager.
    """

    __slots__ = ("_cache", "_node", "_key", "_released")

    def __init__(self, cache: "NodeMemoryCache", node: int, key: CacheKey) -> None:
        self._cache = cache
        self._node = node
        self._key = key
        self._released = False

    def release(self) -> None:
        """Drop eviction protection (the entry may stay resident)."""
        if self._released:
            raise RuntimeError(f"cache pin for {self._key!r} already released")
        self._released = True
        self._cache._unpin(self._node, self._key)

    def __enter__(self) -> "CachePin":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class NodeMemoryCache:
    """Per-node LRU byte budget for loop-invariant simulated data.

    Accounting invariant (property-tested): for every node,
    ``pinned_bytes + unpinned_bytes + free_bytes == capacity`` with all
    three non-negative, and pinned entries are never evicted.
    """

    def __init__(self, capacities: list[int]) -> None:
        for cap in capacities:
            if cap < 0:
                raise ValueError(f"cache capacity must be non-negative, got {cap}")
        self.capacities = list(capacities)
        self._entries: list[OrderedDict[CacheKey, _Entry]] = [
            OrderedDict() for _ in capacities
        ]
        self._used = [0] * len(capacities)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_cluster(
        cls, cluster: "Cluster", ratio: float | None = None
    ) -> "NodeMemoryCache":
        """Budget each node ``ram_bytes * ratio`` (the in-memory knob)."""
        if ratio is None:
            ratio = cache_ratio()
        return cls([int(n.spec.ram_bytes * ratio) for n in cluster.nodes])

    # -- queries -------------------------------------------------------

    def lookup(self, node: int, key: CacheKey) -> bool:
        """Hit iff ``key`` is resident on ``node``; touches LRU order."""
        entry = self._entries[node].get(key)
        if entry is not None and entry.resident:
            self._entries[node].move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def used_bytes(self, node: int) -> int:
        """Bytes reserved on ``node`` (resident or pinned-reserved)."""
        return self._used[node]

    def free_bytes(self, node: int) -> int:
        """Unreserved budget left on ``node``."""
        return self.capacities[node] - self._used[node]

    def pinned_bytes(self, node: int) -> int:
        """Bytes on ``node`` protected from eviction."""
        return sum(e.nbytes for e in self._entries[node].values() if e.pins > 0)

    def snapshot(self) -> CacheStats:
        """Current counters (subtract two snapshots for a window)."""
        return CacheStats(self.hits, self.misses, self.evictions)

    # -- reservation ---------------------------------------------------

    def put(self, node: int, key: CacheKey, nbytes: int) -> bool:
        """Mark ``key`` resident after its bytes were charged.

        Returns False (and caches nothing) when the entry cannot fit
        even after evicting every unpinned entry — the read stays
        uncached and later lookups miss.
        """
        if nbytes < 0:
            raise ValueError(f"cache entry size must be non-negative, got {nbytes}")
        entry = self._entries[node].get(key)
        if entry is not None:
            if entry.nbytes != nbytes:
                raise RuntimeError(
                    f"cache entry {key!r} size changed "
                    f"({entry.nbytes} -> {nbytes}); keys must be content-stable"
                )
            entry.resident = True
            self._entries[node].move_to_end(key)
            return True
        if not self._reserve(node, nbytes):
            return False
        entry = _Entry(nbytes)
        entry.resident = True
        self._entries[node][key] = entry
        self._used[node] += nbytes
        return True

    def pin(self, node: int, key: CacheKey, nbytes: int) -> CachePin | None:
        """Reserve ``key`` on ``node`` and protect it from eviction.

        Returns ``None`` when the reservation cannot fit; the caller
        proceeds uncached.  Pinning does *not* make the entry resident
        — the first real read still pays and then calls :meth:`put`.
        """
        if nbytes < 0:
            raise ValueError(f"cache entry size must be non-negative, got {nbytes}")
        entry = self._entries[node].get(key)
        if entry is None:
            if not self._reserve(node, nbytes):
                return None
            entry = _Entry(nbytes)
            self._entries[node][key] = entry
            self._used[node] += nbytes
        elif entry.nbytes != nbytes:
            raise RuntimeError(
                f"cache entry {key!r} size changed "
                f"({entry.nbytes} -> {nbytes}); keys must be content-stable"
            )
        entry.pins += 1
        return CachePin(self, node, key)

    # -- internals -----------------------------------------------------

    def _unpin(self, node: int, key: CacheKey) -> None:
        entry = self._entries[node][key]
        entry.pins -= 1
        if entry.pins == 0 and not entry.resident:
            # A reservation that never materialized holds no data;
            # dropping it is not an eviction.
            del self._entries[node][key]
            self._used[node] -= entry.nbytes

    def _reserve(self, node: int, nbytes: int) -> bool:
        """Evict unpinned LRU entries until ``nbytes`` fit, or refuse."""
        if nbytes > self.capacities[node]:
            return False
        evictable = sum(
            e.nbytes for e in self._entries[node].values() if e.pins == 0
        )
        if self.free_bytes(node) + evictable < nbytes:
            return False
        while self.free_bytes(node) < nbytes:
            victim = next(
                k for k, e in self._entries[node].items() if e.pins == 0
            )
            gone = self._entries[node].pop(victim)
            self._used[node] -= gone.nbytes
            self.evictions += 1
        return True
