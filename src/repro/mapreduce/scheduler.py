"""Locality-aware task-slot scheduling.

A simplified Hadoop FIFO scheduler: each node advertises a fixed number
of slots of a given kind (map or reduce).  Requests carry an optional
preference list (the nodes holding the task's input block).  When a slot
frees, the scheduler picks, among queued requests, the first one that is
node-local to it, then the first that is rack-local, then the oldest —
the same data-local / rack-local / off-rack cascade Hadoop's JobTracker
used.

Concurrent jobs share the scheduler: requests carry an ``app_id``, and
within each locality tier the request from the job holding the fewest
slots wins (FIFO breaks ties).  A single job's schedule is therefore
exactly the historical FIFO order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.cluster import Cluster


@dataclass
class _Request:
    """A queued slot request with its locality preferences."""

    req_id: int
    preferred: tuple[int, ...]
    callback: Callable[[int], None]
    preferred_racks: frozenset[int] = field(default=frozenset())
    app_id: int = 0


class SlotScheduler:
    """Manages one kind of slot (map or reduce) across the cluster."""

    def __init__(self, cluster: Cluster, kind: str) -> None:
        if kind not in ("map", "reduce"):
            raise ValueError(f"slot kind must be 'map' or 'reduce', got {kind!r}")
        self.cluster = cluster
        self.kind = kind
        self._free: dict[int, int] = {}
        for node in cluster.nodes:
            slots = node.spec.map_slots if kind == "map" else node.spec.reduce_slots
            self._free[node.node_id] = slots
        self._capacity = dict(self._free)
        self._queue: list[_Request] = []
        self._ids = itertools.count()
        # Outstanding slot count per job, for least-granted interleaving
        # of concurrent submissions.
        self._outstanding: dict[int, int] = {}
        # Statistics for locality reporting.
        self.assignments_local = 0
        self.assignments_rack = 0
        self.assignments_remote = 0

    @property
    def total_slots(self) -> int:
        """Cluster-wide slot count of this scheduler's kind."""
        return sum(self._capacity.values())

    def free_slots(self, node_id: int | None = None) -> int:
        """Free slots on ``node_id``, or cluster-wide when omitted."""
        if node_id is None:
            return sum(self._free.values())
        return self._free[node_id]

    def request(
        self,
        callback: Callable[[int], None],
        preferred: Sequence[int] = (),
        app_id: int = 0,
    ) -> None:
        """Ask for a slot; ``callback(node_id)`` fires when one is granted.

        Grants happen synchronously when a slot is free (the caller is
        expected to be inside a simulation event), otherwise the request
        queues until a release.
        """
        racks = frozenset(
            self.cluster.topology.nodes[n].rack_id for n in preferred
        )
        req = _Request(
            req_id=next(self._ids),
            preferred=tuple(preferred),
            callback=callback,
            preferred_racks=racks,
            app_id=app_id,
        )
        node = self._pick_node_for(req)
        if node is None:
            self._queue.append(req)
            return
        self._grant(req, node)

    def release(self, node_id: int, app_id: int = 0) -> None:
        """Return a slot on ``node_id`` and serve the best queued request."""
        if self._free[node_id] >= self._capacity[node_id]:
            raise RuntimeError(
                f"slot over-release on node {node_id} ({self.kind} scheduler)"
            )
        self._free[node_id] += 1
        self._outstanding[app_id] = self._outstanding.get(app_id, 0) - 1
        self._serve_queue(node_id)

    # -- internals -------------------------------------------------------

    def _pick_node_for(self, req: _Request) -> int | None:
        """Choose a free node for a fresh request: local > rack > any."""
        free_nodes = [n for n, k in self._free.items() if k > 0]
        if not free_nodes:
            return None
        local = [n for n in free_nodes if n in req.preferred]
        if local:
            return self._least_loaded(local)
        topo = self.cluster.topology
        rack_local = [
            n for n in free_nodes if topo.nodes[n].rack_id in req.preferred_racks
        ]
        if rack_local:
            return self._least_loaded(rack_local)
        return self._least_loaded(free_nodes)

    def _least_loaded(self, nodes: list[int]) -> int:
        """Most free slots first; node id breaks ties deterministically."""
        return min(nodes, key=lambda n: (-self._free[n], n))

    def _serve_queue(self, node_id: int) -> None:
        if not self._queue or self._free[node_id] <= 0:
            return
        rack = self.cluster.topology.nodes[node_id].rack_id
        chosen = self._least_granted(lambda req: node_id in req.preferred)
        if chosen is None:
            chosen = self._least_granted(
                lambda req: rack in req.preferred_racks
            )
        if chosen is None:
            chosen = self._least_granted(lambda req: True)
        assert chosen is not None  # queue is non-empty
        self._queue.remove(chosen)
        self._grant(chosen, node_id)

    def _least_granted(
        self, want: Callable[[_Request], bool]
    ) -> _Request | None:
        """Least-granted-job request in one locality tier, FIFO ties."""
        best: _Request | None = None
        best_held = 0
        for req in self._queue:
            if not want(req):
                continue
            held = self._outstanding.get(req.app_id, 0)
            if best is None or held < best_held:
                best = req
                best_held = held
        return best

    def _grant(self, req: _Request, node_id: int) -> None:
        self._free[node_id] -= 1
        self._outstanding[req.app_id] = self._outstanding.get(req.app_id, 0) + 1
        if node_id in req.preferred:
            self.assignments_local += 1
        elif self.cluster.topology.nodes[node_id].rack_id in req.preferred_racks:
            self.assignments_rack += 1
        else:
            self.assignments_remote += 1
        req.callback(node_id)
