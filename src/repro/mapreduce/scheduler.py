"""Locality-aware task-slot scheduling.

A simplified Hadoop FIFO scheduler: each node advertises a fixed number
of slots of a given kind (map or reduce).  Requests carry an optional
preference list (the nodes holding the task's input block).  When a slot
frees, the scheduler picks, among queued requests, the first one that is
node-local to it, then the first that is rack-local, then the oldest —
the same data-local / rack-local / off-rack cascade Hadoop's JobTracker
used.

Concurrent jobs share the scheduler: requests carry an ``app_id``, and
within each locality tier the request from the job holding the fewest
slots wins (FIFO breaks ties).  A single job's schedule is therefore
exactly the historical FIFO order.

Matching runs at a **serialization point**: requests and releases made
from inside simulation events only mutate the queue and the free-slot
map, and one deferred :meth:`~repro.cluster.events.Simulation.\
schedule_serialized` pass per timestamp performs the matching over the
complete state.  Which of two same-instant events (a release and a
request, say) happens to run first therefore cannot change any
assignment — the invariant the ``PIC_SANITIZE`` schedule sanitizer
checks and the PIC703 lint rule guards statically.  Calls from outside
any event (driver/submission code, unit tests) are served
synchronously; root-context program order is part of the canonical
order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.cluster import Cluster


@dataclass
class _Request:
    """A queued slot request with its locality preferences."""

    req_id: int
    preferred: tuple[int, ...]
    callback: Callable[[int], None]
    preferred_racks: frozenset[int] = field(default=frozenset())
    app_id: int = 0


class SlotScheduler:
    """Manages one kind of slot (map or reduce) across the cluster."""

    def __init__(self, cluster: Cluster, kind: str) -> None:
        if kind not in ("map", "reduce"):
            raise ValueError(f"slot kind must be 'map' or 'reduce', got {kind!r}")
        self.cluster = cluster
        self.kind = kind
        self._free: dict[int, int] = {}
        for node in cluster.nodes:
            slots = node.spec.map_slots if kind == "map" else node.spec.reduce_slots
            self._free[node.node_id] = slots
        self._capacity = dict(self._free)
        self._queue: list[_Request] = []
        self._ids = itertools.count()
        # Outstanding slot count per job, for least-granted interleaving
        # of concurrent submissions.
        self._outstanding: dict[int, int] = {}
        # Serialization point: one pending serve event per timestamp;
        # _serving suppresses reentrant flushes from grant callbacks.
        self._serve_pending = False
        self._serving = False
        # Statistics for locality reporting.
        self.assignments_local = 0
        self.assignments_rack = 0
        self.assignments_remote = 0

    @property
    def total_slots(self) -> int:
        """Cluster-wide slot count of this scheduler's kind."""
        return sum(self._capacity.values())

    def free_slots(self, node_id: int | None = None) -> int:
        """Free slots on ``node_id``, or cluster-wide when omitted."""
        if node_id is None:
            return sum(self._free.values())
        return self._free[node_id]

    def request(
        self,
        callback: Callable[[int], None],
        preferred: Sequence[int] = (),
        app_id: int = 0,
    ) -> None:
        """Ask for a slot; ``callback(node_id)`` fires when one is granted.

        Inside a simulation event the grant is deferred to the
        timestamp's serialization point; from root context (no event
        executing) a free slot is granted synchronously.
        """
        racks = frozenset(
            self.cluster.topology.nodes[n].rack_id for n in preferred
        )
        req = _Request(
            req_id=next(self._ids),
            preferred=tuple(preferred),
            callback=callback,
            preferred_racks=racks,
            app_id=app_id,
        )
        self._queue.append(req)
        self._flush()

    def release(self, node_id: int, app_id: int = 0) -> None:
        """Return a slot on ``node_id``; queued requests are served at
        the timestamp's serialization point."""
        if self._free[node_id] >= self._capacity[node_id]:
            raise RuntimeError(
                f"slot over-release on node {node_id} ({self.kind} scheduler)"
            )
        self._free[node_id] += 1
        self._outstanding[app_id] = self._outstanding.get(app_id, 0) - 1
        self._flush()

    # -- internals -------------------------------------------------------

    def _flush(self) -> None:
        """Serve now (root context) or at the serialization point."""
        if self._serving:
            return  # the active serve pass loops until quiescent
        sim = self.cluster.sim
        if sim.in_callback:
            if not self._serve_pending:
                self._serve_pending = True
                sim.schedule_serialized(self._serve_point)
        else:
            self._serve()

    def _serve_point(self) -> None:
        self._serve_pending = False
        self._serve()

    def _serve(self) -> None:
        """Canonical greedy matching over the complete queue/slot state.

        Repeatedly pick the best (request, node) pair — locality tier
        first (node-local > rack-local > any), least-granted app within
        the tier, FIFO ties, most-free-then-lowest node id — and grant
        it.  The loop re-examines state after every grant, so requests
        enqueued by grant callbacks at the same instant are matched in
        the same pass.
        """
        self._serving = True
        try:
            while self._queue:
                req = self._next_grant()
                if req is None:
                    break
                node = self._pick_node_for(req)
                assert node is not None  # _next_grant saw a free node
                self._queue.remove(req)
                self._grant(req, node)
        finally:
            self._serving = False

    def _next_grant(self) -> _Request | None:
        """The queued request to serve next, or None when nothing fits."""
        free = [n for n, k in self._free.items() if k > 0]
        if not free:
            return None
        free_set = frozenset(free)
        topo = self.cluster.topology
        free_racks = frozenset(topo.nodes[n].rack_id for n in free)
        pool = [r for r in self._queue if free_set.intersection(r.preferred)]
        if not pool:
            pool = [
                r for r in self._queue
                if free_racks.intersection(r.preferred_racks)
            ]
        if not pool:
            pool = self._queue
        return self._least_granted(pool)

    def _pick_node_for(self, req: _Request) -> int | None:
        """Choose a free node for a fresh request: local > rack > any."""
        free_nodes = [n for n, k in self._free.items() if k > 0]
        if not free_nodes:
            return None
        local = [n for n in free_nodes if n in req.preferred]
        if local:
            return self._least_loaded(local)
        topo = self.cluster.topology
        rack_local = [
            n for n in free_nodes if topo.nodes[n].rack_id in req.preferred_racks
        ]
        if rack_local:
            return self._least_loaded(rack_local)
        return self._least_loaded(free_nodes)

    def _least_loaded(self, nodes: list[int]) -> int:
        """Most free slots first; node id breaks ties deterministically."""
        return min(nodes, key=lambda n: (-self._free[n], n))

    def _least_granted(self, pool: list[_Request]) -> _Request | None:
        """Least-granted-job request in one locality tier, FIFO ties."""
        best: _Request | None = None
        best_held = 0
        for req in pool:
            held = self._outstanding.get(req.app_id, 0)
            if best is None or held < best_held:
                best = req
                best_held = held
        return best

    def _grant(self, req: _Request, node_id: int) -> None:
        self._free[node_id] -= 1
        self._outstanding[req.app_id] = self._outstanding.get(req.app_id, 0) + 1
        if node_id in req.preferred:
            self.assignments_local += 1
        elif self.cluster.topology.nodes[node_id].rack_id in req.preferred_racks:
            self.assignments_rack += 1
        else:
            self.assignments_remote += 1
        req.callback(node_id)
