"""Job specification, task contexts, counters, and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cluster.metrics import TrafficCategory
from repro.mapreduce.costs import CostHints
from repro.mapreduce.records import hash_partitioner

# Signatures (all emission goes through the context):
#   mapper(ctx, key, value)                 — record-at-a-time
#   batch_mapper(ctx, records)              — whole split (vectorizable);
#                                             records may be a ColumnBatch
#   combiner(key, values) -> value          — associative local reduction
#   batch_combiner(grouped) -> ColumnBatch  — whole-bucket combiner over a
#                                             GroupedBatch (or None to
#                                             defer to the scalar combiner)
#   reducer(ctx, key, values)               — record-at-a-time
#   batch_reducer(ctx, grouped)             — all groups of one partition
Mapper = Callable[["TaskContext", Any, Any], None]
BatchMapper = Callable[["TaskContext", Sequence[tuple[Any, Any]]], None]
Combiner = Callable[[Any, list[Any]], Any]
BatchCombiner = Callable[[Any], Any]
Reducer = Callable[["TaskContext", Any, list[Any]], None]
BatchReducer = Callable[["TaskContext", Sequence[tuple[Any, list[Any]]]], None]


class TaskContext:
    """What a running mapper/reducer sees: the model, and ``emit``.

    ``split_index`` identifies the input split a map task is processing
    (``None`` in reducers).  ``stats`` is a scratch dict tasks may fill
    with numeric facts (e.g. PIC's in-mapper local iteration counts);
    the runner surfaces them in :class:`JobResult`.

    Output accumulates as ordered *segments*: scalar ``emit`` calls
    append to a row segment, ``emit_batch`` appends a whole
    :class:`~repro.mapreduce.columnar.ColumnBatch`.  ``collect``
    preserves the batch form when the task emitted exactly one shape,
    so the runner's vectorized shuffle sees columns, not tuples.
    """

    def __init__(self, model: Any = None, split_index: int | None = None) -> None:
        self.model = model
        self.split_index = split_index
        self.stats: dict[str, float] = {}
        self._segments: list[Any] = []

    def emit(self, key: Any, value: Any) -> None:
        """Emit one key/value record."""
        if self._segments and isinstance(self._segments[-1], list):
            self._segments[-1].append((key, value))
        else:
            self._segments.append([(key, value)])

    def emit_all(self, records: Sequence[tuple[Any, Any]]) -> None:
        """Emit a batch of records at once (precomputed task outputs)."""
        from repro.mapreduce.columnar import ColumnBatch

        if isinstance(records, ColumnBatch):
            self.emit_batch(records)
        elif self._segments and isinstance(self._segments[-1], list):
            self._segments[-1].extend(records)
        else:
            self._segments.append(list(records))

    def emit_batch(self, batch: Any) -> None:
        """Emit a whole columnar batch (vectorized mappers/reducers)."""
        self._segments.append(batch)

    @property
    def output_count(self) -> int:
        """Number of records emitted so far (no materialization)."""
        return sum(len(seg) for seg in self._segments)

    def collect(self) -> Any:
        """The emitted output: a single ``ColumnBatch`` when the task
        emitted exactly one batch and nothing else, rows otherwise."""
        if len(self._segments) == 1 and not isinstance(self._segments[0], list):
            return self._segments[0]
        return self.output

    @property
    def output(self) -> list[tuple[Any, Any]]:
        """Records emitted so far, in emission order, as rows."""
        out: list[tuple[Any, Any]] = []
        for seg in self._segments:
            if isinstance(seg, list):
                out.extend(seg)
            else:
                out.extend(seg.to_rows())
        return out


class Counters:
    """Hadoop-style named counters."""

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0 when unset)."""
        return self._counts.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        """A plain-dict copy of all counters."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counters({self._counts})"


@dataclass
class JobSpec:
    """One MapReduce job.

    Exactly one of ``mapper`` / ``batch_mapper`` must be given, and
    exactly one of ``reducer`` / ``batch_reducer``.  ``combiner`` is
    optional and, as in Hadoop, must be associative and idempotent with
    respect to the reducer's semantics.
    """

    name: str
    mapper: Mapper | None = None
    batch_mapper: BatchMapper | None = None
    reducer: Reducer | None = None
    batch_reducer: BatchReducer | None = None
    combiner: Combiner | None = None
    # Optional vectorized form of ``combiner``: takes a GroupedBatch and
    # returns a combined ColumnBatch, or None to fall back per-group.
    # Must agree with ``combiner`` bit-for-bit (equivalence-tested).
    batch_combiner: BatchCombiner | None = None
    num_reducers: int = 1
    partitioner: Callable[[Any, int], int] = hash_partitioner
    costs: CostHints = field(default_factory=CostHints)
    output_category: str = TrafficCategory.MODEL_UPDATE
    output_replication: int = 3
    # Optional override for a map task's compute time:
    # map_cost(num_records, split_nbytes, ctx) -> seconds at reference CPU.
    # PIC's best-effort jobs use this to charge the in-mapper local
    # iterations the task actually performed (reported via ctx.stats).
    map_cost: Callable[[int, int, TaskContext], float] | None = None

    def __post_init__(self) -> None:
        if (self.mapper is None) == (self.batch_mapper is None):
            raise ValueError(
                f"job {self.name!r}: specify exactly one of mapper/batch_mapper"
            )
        if (self.reducer is None) == (self.batch_reducer is None):
            raise ValueError(
                f"job {self.name!r}: specify exactly one of reducer/batch_reducer"
            )
        if self.batch_combiner is not None and self.combiner is None:
            raise ValueError(
                f"job {self.name!r}: batch_combiner requires a scalar "
                "combiner (the row path and fallbacks run it)"
            )
        if self.num_reducers <= 0:
            raise ValueError(
                f"job {self.name!r}: num_reducers must be positive, got {self.num_reducers}"
            )
        if self.output_replication < 1:
            raise ValueError(
                f"job {self.name!r}: output_replication must be >= 1"
            )

    def run_mapper(self, ctx: TaskContext, records: Sequence[tuple[Any, Any]]) -> None:
        """Invoke whichever mapper form the job defines."""
        if self.batch_mapper is not None:
            self.batch_mapper(ctx, records)
        else:
            assert self.mapper is not None
            for key, value in records:
                self.mapper(ctx, key, value)

    def run_reducer(
        self, ctx: TaskContext, grouped: Sequence[tuple[Any, list[Any]]]
    ) -> None:
        """Invoke whichever reducer form the job defines."""
        if self.batch_reducer is not None:
            self.batch_reducer(ctx, grouped)
        else:
            assert self.reducer is not None
            for key, values in grouped:
                self.reducer(ctx, key, values)


@dataclass
class JobResult:
    """Everything a job run produced, with measured volumes."""

    job_name: str
    output: list[tuple[Any, Any]]
    counters: Counters
    started_at: float
    finished_at: float
    map_output_bytes_raw: int = 0      # before combiner
    shuffle_bytes: int = 0             # after combiner, map→reduce
    output_bytes: int = 0              # reducer output, written to DFS
    output_locations: tuple[int, ...] = (0,)  # nodes holding output replicas
    map_stats: dict[int, dict[str, float]] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Simulated job makespan."""
        return self.finished_at - self.started_at
