"""Records, input splits, and DFS-backed distributed datasets."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.dfs.dfs import DistributedFileSystem
from repro.util.sizing import sizeof_records


def stable_hash(key: Any) -> int:
    """Deterministic hash for partitioning (Python's ``hash`` is salted)."""
    if isinstance(key, bool):
        data = b"b1" if key else b"b0"
    elif isinstance(key, int):
        try:
            data = b"i" + key.to_bytes(16, "little", signed=True)
        except OverflowError:
            # Beyond 128 bits: minimal signed width (always > 16 bytes,
            # so these never collide with the fixed-width form above).
            width = key.bit_length() // 8 + 1
            data = b"i" + key.to_bytes(width, "little", signed=True)
    elif isinstance(key, float):
        data = b"f" + repr(key).encode()
    elif isinstance(key, str):
        data = b"s" + key.encode("utf-8")
    elif isinstance(key, bytes):
        data = b"y" + key
    elif isinstance(key, tuple):
        data = b"t" + b"|".join(
            stable_hash(item).to_bytes(8, "little") for item in key
        )
    else:
        raise TypeError(f"unhashable partition key type: {type(key).__name__}")
    return zlib.crc32(data)


def hash_partitioner(key: Any, num_partitions: int) -> int:
    """Hadoop's default: stable hash of the key modulo reducer count."""
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive, got {num_partitions}")
    return stable_hash(key) % num_partitions


def group_by_key(records: Iterable[tuple[Any, Any]]) -> list[tuple[Any, list[Any]]]:
    """Group values by key, in sorted key order when keys are sortable.

    This mirrors Hadoop's sort phase.  Mixed-type key sets (unorderable
    in Python 3) fall back to sorting by ``(type qualname, repr)``:
    qualifying by type first keeps keys of different types from
    interleaving on repr collisions (``1`` vs ``np.int64(1)`` both repr
    as ``"1"``), so the order is deterministic and same-type keys stay
    grouped together.
    """
    grouped: dict[Any, list[Any]] = {}
    for key, value in records:
        grouped.setdefault(key, []).append(value)
    try:
        items = sorted(grouped.items(), key=lambda kv: kv[0])
    except TypeError:
        items = sorted(
            grouped.items(),
            key=lambda kv: (type(kv[0]).__qualname__, repr(kv[0])),
        )
    return items


def _as_split_records(chunk: Sequence[tuple[Any, Any]], columnar: bool | None) -> Any:
    """Rows or a ``ColumnBatch``, per the ``columnar`` flag / environment.

    The import is deferred: :mod:`repro.mapreduce.columnar` builds on the
    scalar hash and grouping defined here.
    """
    from repro.mapreduce.columnar import ColumnBatch, columnar_enabled

    if isinstance(chunk, ColumnBatch):
        return chunk
    if columnar is None:
        columnar = columnar_enabled()
    if columnar:
        return ColumnBatch.from_rows(list(chunk))
    return list(chunk)


@dataclass
class Split:
    """One input split: its records plus their serialized size.

    ``records`` is either a plain list of ``(key, value)`` tuples or a
    :class:`~repro.mapreduce.columnar.ColumnBatch` — both iterate as
    rows, report ``len``, and size identically, so consumers that do not
    opt into the columnar fast paths never notice the difference.

    ``nbytes`` defaults to the measured serialized size of the records
    but can be overridden when the dataset models a larger on-disk
    encoding.
    """

    index: int
    records: Any
    nbytes: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            self.nbytes = sizeof_records(self.records)

    def __len__(self) -> int:
        return len(self.records)


class DistributedDataset:
    """Input data registered with the DFS, split for map tasks.

    Each split is backed by exactly one DFS block so the scheduler's
    locality decisions see the same placement a Hadoop job would.
    """

    def __init__(self, path: str, splits: list[Split], dfs: DistributedFileSystem):
        if not splits:
            raise ValueError("a dataset needs at least one split")
        self.path = path
        self.splits = splits
        self.dfs = dfs
        self._block_locations: list[tuple[int, ...]] = []

    @classmethod
    def materialize(
        cls,
        dfs: DistributedFileSystem,
        path: str,
        records: Sequence[tuple[Any, Any]],
        num_splits: int,
        writer_node: int = 0,
        split_fn: Callable[[Sequence[tuple[Any, Any]], int], list[list[tuple[Any, Any]]]]
        | None = None,
        columnar: bool | None = None,
    ) -> "DistributedDataset":
        """Split ``records`` evenly and register them with the DFS.

        ``columnar`` converts each split to a ``ColumnBatch`` (default:
        the ``PIC_COLUMNAR`` environment setting); conversion is
        lossless, so simulated results are identical either way.
        """
        if num_splits <= 0:
            raise ValueError(f"num_splits must be positive, got {num_splits}")
        num_splits = min(num_splits, max(1, len(records)))
        if split_fn is None:
            chunks = cls._even_chunks(records, num_splits)
        else:
            chunks = split_fn(records, num_splits)
        splits = [
            Split(index=i, records=_as_split_records(chunk, columnar))
            for i, chunk in enumerate(chunks)
        ]
        dataset = cls(path, splits, dfs)
        dataset._register_blocks(writer_node)
        return dataset

    @classmethod
    def from_partitions(
        cls,
        dfs: DistributedFileSystem,
        path: str,
        partitions: Sequence[Sequence[tuple[Any, Any]]],
        placements: Sequence[int],
        replication: int = 1,
        sizes: Sequence[int] | None = None,
        columnar: bool | None = None,
    ) -> "DistributedDataset":
        """Build a dataset with one split per given partition, each
        pinned to a chosen node (PIC's co-located sub-problem data).

        ``sizes`` passes along already-measured serialized sizes so a
        caller that sized the partitions (e.g. for scatter accounting)
        does not pay for a second walk over every record.
        """
        if len(placements) != len(partitions):
            raise ValueError(
                f"{len(partitions)} partitions but {len(placements)} placements"
            )
        if sizes is not None and len(sizes) != len(partitions):
            raise ValueError(
                f"{len(partitions)} partitions but {len(sizes)} sizes"
            )
        splits = [
            Split(
                index=i,
                records=_as_split_records(p, columnar),
                nbytes=sizes[i] if sizes is not None else -1,
            )
            for i, p in enumerate(partitions)
        ]
        dataset = cls(path, splits, dfs)
        for split, node in zip(splits, placements):
            meta = dfs.namenode.create(
                f"{path}/part-{split.index:05d}",
                split.nbytes,
                writer_node=node,
                replication=replication,
            )
            dataset._block_locations.append(
                meta.blocks[0].replicas if meta.blocks else (node,)
            )
        return dataset

    @staticmethod
    def _even_chunks(
        records: Sequence[tuple[Any, Any]], num_splits: int
    ) -> list[list[tuple[Any, Any]]]:
        n = len(records)
        bounds = [round(i * n / num_splits) for i in range(num_splits + 1)]
        return [list(records[bounds[i] : bounds[i + 1]]) for i in range(num_splits)]

    def _register_blocks(self, writer_node: int) -> None:
        """Create one DFS file per split (block-per-split placement)."""
        namenode = self.dfs.namenode
        num_nodes = self.dfs.cluster.num_nodes
        for split in self.splits:
            # Bypass the data-plane cost for ingest: the paper's runs
            # (and its strengthened baseline) start from data already in
            # HDFS. Metadata-only create still decides replica placement;
            # rotating the "writer" spreads first replicas like a real
            # parallel ingest would.
            writer = (writer_node + split.index) % num_nodes
            meta = namenode.create(
                f"{self.path}/part-{split.index:05d}", split.nbytes, writer
            )
            self._block_locations.append(meta.blocks[0].replicas if meta.blocks else ())

    def locations(self, split_index: int) -> tuple[int, ...]:
        """Nodes holding the block backing ``split_index``."""
        return self._block_locations[split_index]

    @property
    def num_records(self) -> int:
        """Total record count over all splits."""
        return sum(len(s) for s in self.splits)

    @property
    def nbytes(self) -> int:
        """Total serialized size over all splits."""
        return sum(s.nbytes for s in self.splits)

    def all_records(self) -> list[tuple[Any, Any]]:
        """All records, concatenated in split order."""
        return [record for split in self.splits for record in split.records]
