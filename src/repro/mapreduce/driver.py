"""The conventional iterative-convergence driver (paper Figure 1(a)).

.. code-block:: text

    model = initial model
    do:
        model = MapReduce(job, input data, model)
    until converged(model, previous model)

Each iteration runs one (or a chain of) MapReduce job(s) whose reducers
produce the next model.  The driver tracks per-iteration simulated time
and traffic so the benchmark harness can report the paper's breakdowns.

The ``optimized_baseline`` flag strengthens the baseline exactly as the
paper does in Section V-A: input splits are treated as cached after the
first iteration (Twister/Spark/HaLoop-style invariant-data caching) and
the per-job/task launch overheads are zeroed — so PIC's speedup is
measured against a baseline that already has those fixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.cluster import Cluster
from repro.mapreduce.job import JobResult, JobSpec
from repro.mapreduce.records import DistributedDataset
from repro.mapreduce.runner import JobRunner

# An iteration turns (model, job output records) into the next model.
ModelBuilder = Callable[[Any, list[tuple[Any, Any]]], Any]
# converged(previous_model, new_model, iteration) -> bool
Convergence = Callable[[Any, Any, int], bool]


@dataclass
class IterationTrace:
    """Measurements for one driver iteration."""

    iteration: int
    duration: float
    shuffle_bytes: int
    model_update_bytes: int
    job_results: list[JobResult] = field(default_factory=list)
    # Node-memory cache activity (pipelined mode; zero otherwise).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0


@dataclass
class DriverResult:
    """Final model plus the full per-iteration trace."""

    model: Any
    iterations: int
    traces: list[IterationTrace]
    total_time: float

    @property
    def total_shuffle_bytes(self) -> int:
        """Shuffle bytes summed over all iterations."""
        return sum(t.shuffle_bytes for t in self.traces)

    @property
    def total_model_update_bytes(self) -> int:
        """Model-update bytes summed over all iterations."""
        return sum(t.model_update_bytes for t in self.traces)


class IterativeDriver:
    """Runs the do-until-converged loop of Figure 1(a)."""

    def __init__(
        self,
        runner: JobRunner,
        dataset: DistributedDataset,
        jobs: Callable[[Any, int], list[JobSpec]],
        build_model: ModelBuilder,
        converged: Convergence,
        model_sizer: Callable[[Any], int],
        max_iterations: int = 100,
        optimized_baseline: bool = True,
        input_already_cached: bool = False,
        model_mode: str = "broadcast",
        speculative: bool = False,
    ) -> None:
        """Configure the loop.

        ``jobs(model, iteration)`` returns the MapReduce job chain for
        one iteration (usually a single job; PageRank returns two).
        ``build_model(model, output)`` folds the final job's output
        records into the next model.  ``model_sizer`` gives the
        serialized model size charged for distribution and DFS writes.
        """
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self.runner = runner
        self.dataset = dataset
        self.jobs = jobs
        self.build_model = build_model
        self.converged = converged
        self.model_sizer = model_sizer
        self.max_iterations = max_iterations
        self.optimized_baseline = optimized_baseline
        self.input_already_cached = input_already_cached
        self.model_mode = model_mode
        self.speculative = speculative

    @property
    def cluster(self) -> Cluster:
        """The cluster this driver's jobs run on."""
        return self.runner.cluster

    def run(
        self, initial_model: Any, model_locations: tuple[int, ...] = (0,)
    ) -> DriverResult:
        """Iterate until convergence (or ``max_iterations``)."""
        model = initial_model
        traces: list[IterationTrace] = []
        started = self.cluster.now
        input_seen = self.input_already_cached

        pipeline = self.runner.pipeline
        cache = self.runner.cache

        for iteration in range(self.max_iterations):
            iter_start = self.cluster.now
            meter_before = self.cluster.meter.snapshot()
            cache_before = cache.snapshot() if cache is not None else None
            specs = self.jobs(model, iteration)
            if not specs:
                raise ValueError("jobs() returned an empty chain")
            job_results: list[JobResult] = []
            current_model = model
            for spec in specs:
                if self.optimized_baseline:
                    spec = _strip_overheads(spec)
                elif pipeline and iteration > 0:
                    # Warm executors: after the first iteration the
                    # pipelined engine keeps containers alive
                    # (Spark/HaLoop style), so repeated job/task launch
                    # costs disappear without the blanket §V-A credit.
                    spec = _strip_overheads(spec)
                result = self.runner.run(
                    spec,
                    self.dataset,
                    model=current_model,
                    model_bytes=self.model_sizer(current_model),
                    model_locations=model_locations,
                    # Pipelined mode earns input residency through the
                    # node cache instead of the blanket §V-A credit.
                    input_cached=(
                        self.optimized_baseline and input_seen and not pipeline
                    ),
                    model_mode=self.model_mode,
                    speculative=self.speculative,
                )
                job_results.append(result)
                model_locations = result.output_locations
                # Chained jobs see the model refined so far this iteration.
                current_model = self.build_model(current_model, result.output)
            input_seen = True
            new_model = current_model
            delta = self.cluster.meter.diff(meter_before)
            cache_delta = (
                cache.snapshot() - cache_before
                if cache is not None and cache_before is not None
                else None
            )
            traces.append(
                IterationTrace(
                    iteration=iteration,
                    duration=self.cluster.now - iter_start,
                    shuffle_bytes=int(
                        delta.get("shuffle", {}).get("total_bytes", 0)
                    ),
                    model_update_bytes=int(
                        delta.get("model_update", {}).get("total_bytes", 0)
                    ),
                    job_results=job_results,
                    cache_hits=cache_delta.hits if cache_delta else 0,
                    cache_misses=cache_delta.misses if cache_delta else 0,
                    cache_evictions=cache_delta.evictions if cache_delta else 0,
                )
            )
            previous, model = model, new_model
            if self.converged(previous, model, iteration):
                break

        return DriverResult(
            model=model,
            iterations=len(traces),
            traces=traces,
            total_time=self.cluster.now - started,
        )


def _strip_overheads(spec: JobSpec) -> JobSpec:
    """Zero job/task launch overheads (strengthened baseline, §V-A)."""
    costs = spec.costs.without_overheads()
    if costs == spec.costs:
        return spec
    return JobSpec(
        name=spec.name,
        mapper=spec.mapper,
        batch_mapper=spec.batch_mapper,
        reducer=spec.reducer,
        batch_reducer=spec.batch_reducer,
        combiner=spec.combiner,
        batch_combiner=spec.batch_combiner,
        num_reducers=spec.num_reducers,
        partitioner=spec.partitioner,
        costs=costs,
        output_category=spec.output_category,
        output_replication=spec.output_replication,
        map_cost=spec.map_cost,
    )
