"""Compute-time cost hints for simulated tasks.

Byte volumes in this reproduction are measured; compute time is modeled.
Each application supplies a :class:`CostHints` calibrated to the
relative weight of its per-record map and reduce work (a distance
computation per point for K-means, an edge-score update for PageRank,
a forward+backward pass for the neural network, ...).  Costs are
expressed at the reference CPU (the small cluster's E5520 = speed 1.0)
and scaled by each node's ``cpu_speed``.

Defaults approximate Hadoop-era Java record processing; the exact
constants shift absolute runtimes, not who wins — both IC and PIC
execute the same mapper/reducer records.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostHints:
    """Per-task compute-time coefficients (seconds, at reference CPU)."""

    map_seconds_per_record: float = 2e-6
    map_seconds_per_byte: float = 0.0
    reduce_seconds_per_record: float = 1e-6
    sort_seconds_per_record: float = 5e-7
    task_overhead_seconds: float = 0.2
    job_overhead_seconds: float = 3.0
    # Pure-compute cost per record when the same computation runs *in
    # memory* instead of through the MapReduce record pipeline
    # (read/deserialize/map/serialize/sort/spill).  PIC's best-effort map
    # tasks run local iterations in memory, so they pay this instead of
    # map_seconds_per_record.  The default ratio of 0.1 is what the
    # paper's own measurements imply: with its Table I iteration counts
    # (31 IC iterations; local iterations 34,3,2 over 3 best-effort
    # rounds; ~5 top-off iterations) a 3x overall speedup requires the
    # in-memory pass to cost ~10% of a Hadoop record-pipeline pass —
    # consistent with the 10-100x per-record gaps reported for
    # in-memory frameworks of that era.  An ablation bench sweeps it.
    inmemory_seconds_per_record: float | None = None

    DEFAULT_INMEMORY_RATIO = 0.1

    def __post_init__(self) -> None:
        for name in (
            "map_seconds_per_record",
            "map_seconds_per_byte",
            "reduce_seconds_per_record",
            "sort_seconds_per_record",
            "task_overhead_seconds",
            "job_overhead_seconds",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.inmemory_seconds_per_record is not None:
            if self.inmemory_seconds_per_record < 0:
                raise ValueError("inmemory_seconds_per_record must be non-negative")

    @property
    def inmemory_per_record(self) -> float:
        """Effective in-memory per-record compute cost."""
        if self.inmemory_seconds_per_record is not None:
            return self.inmemory_seconds_per_record
        return self.map_seconds_per_record * self.DEFAULT_INMEMORY_RATIO

    def inmemory_compute(self, num_records: int) -> float:
        """In-memory cost of one local iteration over ``num_records``."""
        return num_records * self.inmemory_per_record

    def map_compute(self, num_records: int, nbytes: int) -> float:
        """Mapper CPU seconds for one split at reference speed."""
        return (
            num_records * self.map_seconds_per_record
            + nbytes * self.map_seconds_per_byte
        )

    def reduce_compute(self, num_input_records: int) -> float:
        """Reducer CPU seconds (merge-sort + reduce) at reference speed."""
        return num_input_records * (
            self.reduce_seconds_per_record + self.sort_seconds_per_record
        )

    def reduce_merge_compute(self, num_input_records: int) -> float:
        """The merge-sort share of :meth:`reduce_compute`.

        Pipelined execution charges this incrementally, per arriving
        shuffle bucket, overlapping it with the remaining map wave.
        """
        return num_input_records * self.sort_seconds_per_record

    def reduce_apply_compute(self, num_input_records: int) -> float:
        """The reduce-function share of :meth:`reduce_compute`.

        ``reduce_merge_compute + reduce_apply_compute`` equals
        ``reduce_compute`` up to float associativity; the barrier path
        keeps the fused formula so default-mode runs stay bit-identical.
        """
        return num_input_records * self.reduce_seconds_per_record

    def without_overheads(self) -> "CostHints":
        """The strengthened-baseline variant of Section V-A.

        The paper subtracts repeated job-creation and task-launch costs
        from its baseline (optimizations of Twister/Spark/HaLoop); this
        returns the same hints with those overheads zeroed.
        """
        return CostHints(
            map_seconds_per_record=self.map_seconds_per_record,
            map_seconds_per_byte=self.map_seconds_per_byte,
            reduce_seconds_per_record=self.reduce_seconds_per_record,
            sort_seconds_per_record=self.sort_seconds_per_record,
            task_overhead_seconds=0.0,
            job_overhead_seconds=0.0,
            inmemory_seconds_per_record=self.inmemory_seconds_per_record,
        )
