"""MapReduce engine on the simulated cluster.

Mappers, combiners and reducers are **real Python functions executed on
real records** — model quality, iteration counts and byte volumes are
genuine.  Only *time* is simulated: compute from per-record cost hints
scaled by node CPU speed, and data movement from the flow-level network
model (input reads, all-to-all shuffle, replicated output writes).

The package mirrors Hadoop 0.20-era structure:

* :mod:`repro.mapreduce.records` — key/value records, splits, and
  DFS-backed distributed datasets;
* :mod:`repro.mapreduce.costs` — calibrated per-record/per-byte compute
  cost hints;
* :mod:`repro.mapreduce.job` — job specification (mapper / combiner /
  reducer / partitioner), contexts, counters, and results;
* :mod:`repro.mapreduce.scheduler` — locality-aware slot scheduling;
* :mod:`repro.mapreduce.runner` — the engine that executes one job on
  the DES cluster;
* :mod:`repro.mapreduce.driver` — the do-until-converged template of the
  paper's Figure 1(a), including the strengthened "optimized baseline"
  mode of Section V-A (no repeated job-init cost, cached input).
"""

from repro.mapreduce.records import (
    Split,
    DistributedDataset,
    group_by_key,
    hash_partitioner,
)
from repro.mapreduce.columnar import (
    ColumnBatch,
    GroupedBatch,
    build_column,
    columnar_enabled,
    group_batch,
    group_records,
)
from repro.mapreduce.costs import CostHints
from repro.mapreduce.job import JobSpec, JobResult, Counters
from repro.mapreduce.runner import JobRunner
from repro.mapreduce.driver import IterativeDriver, IterationTrace, DriverResult

__all__ = [
    "Split",
    "DistributedDataset",
    "group_by_key",
    "hash_partitioner",
    "ColumnBatch",
    "GroupedBatch",
    "build_column",
    "columnar_enabled",
    "group_batch",
    "group_records",
    "CostHints",
    "JobSpec",
    "JobResult",
    "Counters",
    "JobRunner",
    "IterativeDriver",
    "IterationTrace",
    "DriverResult",
]
