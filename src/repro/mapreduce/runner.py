"""The MapReduce job runner: executes one job on the DES cluster.

Task lifecycle (all on the simulated clock):

* **map task** — wait for a map slot (locality-aware); fetch the model
  once per node per job (``model_read`` traffic); read the input split
  from the closest replica (``input`` traffic, free when the driver has
  cached invariant input à la Twister/HaLoop); charge mapper compute;
  run the *real* mapper; apply the combiner per reduce-partition; charge
  the local spill; release the slot; start the shuffle flows.
* **shuffle** — one flow per (map task, reduce partition) from the map
  node to the partition's reduce node, overlapped with remaining maps,
  exactly the all-to-all pattern that stresses the bisection.
* **reduce task** — wait until every map's bucket for this partition has
  arrived and a reduce slot on its node frees; charge merge-sort +
  reduce compute; run the *real* reducer; write the output to the DFS
  with the job's replication (``model_update`` traffic by default).

Byte volumes are measured from the actual records; Hadoop-style counters
record them for the benchmark harness.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

import numpy as np

from repro.cluster.cache import NodeMemoryCache
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import TrafficCategory
from repro.dfs.dfs import DistributedFileSystem, FileMeta
from repro.mapreduce.columnar import (
    ColumnBatch,
    GroupedBatch,
    concat_batches,
    group_batch,
)
from repro.mapreduce.job import Counters, JobResult, JobSpec, TaskContext
from repro.mapreduce.pipeline import SplitGate, pipeline_enabled
from repro.mapreduce.records import (
    DistributedDataset,
    group_by_key,
    hash_partitioner,
)
from repro.mapreduce.scheduler import SlotScheduler
# Leaf-module import: repro.parallel's package __init__ pulls in
# repro.parallel.tasks, which needs this package — importing the
# executor module directly keeps the cycle open at one end.
from repro.parallel.executor import TaskExecutor, get_executor
from repro.util.sizing import sizeof_records


class JobRunner:
    """Runs MapReduce jobs on one cluster; slots persist across jobs.

    ``executor`` controls where the *host* computes map-task outputs:
    a parallel executor precomputes every (independent) map task of a
    job across a process pool, and the simulated tasks replay those
    outputs at their scheduled times — same records, same counters,
    same simulated clock, less wall-clock.  Unpicklable job specs
    (e.g. closure-based best-effort jobs) silently keep the in-process
    path.
    """

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFileSystem,
        executor: TaskExecutor | None = None,
        pipeline: bool | None = None,
        cache: NodeMemoryCache | None = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs
        self.executor = executor or get_executor()
        # Pipelined mode (``PIC_PIPELINE`` when None): reducers merge
        # arriving buckets incrementally and input splits are served
        # from the simulated node-memory cache across iterations.
        self.pipeline = pipeline_enabled() if pipeline is None else pipeline
        if cache is None and self.pipeline:
            cache = NodeMemoryCache.from_cluster(cluster)
        self.cache = cache if self.pipeline else None
        self.map_scheduler = SlotScheduler(cluster, "map")
        self._reduce_capacity = {
            n.node_id: n.spec.reduce_slots for n in cluster.nodes
        }
        # Reduce tasks are pinned to a node; pending acquisitions park
        # here keyed by (app_id, partition) so a release by *any* job
        # wakes waiters in canonical order — not arrival order, which
        # would leak same-timestamp tie order into the schedule.
        self._reduce_waiters: dict[
            int, list[tuple[tuple[int, int], Callable[[], None]]]
        ] = {}
        # Serialization point for reduce-slot matching (cf.
        # SlotScheduler._flush): one pending resolve per timestamp.
        self._reduce_resolve_pending = False
        self._reduce_resolving = False
        self._job_seq = itertools.count()

    def run(
        self,
        spec: JobSpec,
        dataset: DistributedDataset,
        model: Any = None,
        model_bytes: int = 0,
        model_locations: tuple[int, ...] = (0,),
        input_cached: bool = False,
        model_mode: str = "broadcast",
        failures: dict[int, int] | None = None,
        speculative: bool = False,
        model_gate: SplitGate | None = None,
    ) -> JobResult:
        """Execute ``spec`` over ``dataset`` and return measured results.

        Equivalent to one :meth:`submit` followed by running the
        simulation to quiescence; use :meth:`submit_many` /
        :meth:`run_many` to drive several jobs through the shared
        cluster concurrently.

        ``model``/``model_bytes``/``model_locations`` describe the
        current model: the object handed to tasks, its serialized size,
        and the nodes holding replicas of it.  ``input_cached`` marks
        invariant input already resident from a previous iteration
        (the paper's strengthened baseline).

        ``model_mode`` selects the distribution pattern: ``"broadcast"``
        ships the whole model to every node that runs a map task
        (distributed-cache pattern — K-means centroids, NN weights);
        ``"partitioned"`` ships each task only its input share of the
        model (chained-job pattern — PageRank scores, the smoothing
        image, the solver's unknown vector), so the per-iteration
        distribution volume is ~one model, not one per node.

        ``failures`` injects task failures Hadoop-style:
        ``{split_index: n}`` makes the map task for that split die
        mid-compute ``n`` times before succeeding; each attempt's
        partial work is lost and the task is rescheduled (Section VII:
        PIC inherits this fault tolerance unmodified).

        ``speculative`` enables Hadoop's backup tasks: once every map
        is either finished or running and slots are idle, stragglers get
        a duplicate attempt elsewhere; the first attempt to finish wins.

        ``model_gate`` (pipelined mode) makes each map task wait on its
        split's outstanding prerequisite flows — e.g. the engine's
        sub-model scatter — instead of the caller draining the event
        queue before submitting the job.
        """
        handle = self.submit(
            spec, dataset, model, model_bytes, model_locations, input_cached,
            model_mode, failures, speculative, model_gate,
        )
        self.cluster.run()
        return handle.result()

    # -- concurrent submission ------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        dataset: DistributedDataset,
        model: Any = None,
        model_bytes: int = 0,
        model_locations: tuple[int, ...] = (0,),
        input_cached: bool = False,
        model_mode: str = "broadcast",
        failures: dict[int, int] | None = None,
        speculative: bool = False,
        model_gate: SplitGate | None = None,
    ) -> "JobHandle":
        """Launch a job without draining the event queue.

        The job starts competing for slots and fabric bandwidth as soon
        as the simulation runs; call :meth:`JobHandle.result` after the
        cluster quiesces.  Concurrent submissions interleave fairly:
        each carries its job index as the scheduler ``app_id``, so slot
        grants go to the least-granted job first.
        """
        if model_mode not in ("broadcast", "partitioned"):
            raise ValueError(
                f"model_mode must be 'broadcast' or 'partitioned', got {model_mode!r}"
            )
        state = _JobState(self, spec, dataset, model, model_bytes,
                          model_locations, input_cached, next(self._job_seq),
                          model_mode, failures or {}, speculative, model_gate)
        state.launch()
        return JobHandle(state)

    def submit_many(
        self, submissions: "list[tuple[JobSpec, DistributedDataset] | tuple[JobSpec, DistributedDataset, dict[str, Any]]]"
    ) -> "list[JobHandle]":
        """Submit several jobs at once against the shared cluster.

        Each submission is ``(spec, dataset)`` or
        ``(spec, dataset, kwargs)`` with :meth:`submit` keyword
        arguments.  All jobs share the simulation clock, the flow
        network, and the slot/container schedulers.
        """
        handles = []
        for submission in submissions:
            if len(submission) == 2:
                spec, dataset = submission  # type: ignore[misc]
                kwargs: dict[str, Any] = {}
            else:
                spec, dataset, kwargs = submission  # type: ignore[misc]
            handles.append(self.submit(spec, dataset, **kwargs))
        return handles

    def run_many(
        self, submissions: "list[tuple[JobSpec, DistributedDataset] | tuple[JobSpec, DistributedDataset, dict[str, Any]]]"
    ) -> list[JobResult]:
        """Submit several jobs, run the cluster to quiescence, and
        return their results in submission order."""
        handles = self.submit_many(submissions)
        self.cluster.run()
        return [handle.result() for handle in handles]

    # -- reduce slot management (pinned to a node, serialized) ----------

    def acquire_reduce(
        self,
        node_id: int,
        key: tuple[int, int],
        grant: Callable[[], None],
    ) -> None:
        """Queue a reduce-slot acquisition pinned to ``node_id``.

        ``grant()`` fires at the timestamp's serialization point once a
        slot is free; among same-node waiters the lowest
        ``key=(app_id, partition)`` wins, so the grant order is a pure
        function of cluster state, never of same-instant arrival order.
        """
        self._reduce_waiters.setdefault(node_id, []).append((key, grant))
        self._flush_reduce()

    def release_reduce(self, node_id: int, app_id: int = 0) -> None:
        """Return a reduce slot on ``node_id``."""
        limit = self.cluster.nodes[node_id].spec.reduce_slots
        if self._reduce_capacity[node_id] >= limit:
            raise RuntimeError(f"reduce slot over-release on node {node_id}")
        self._reduce_capacity[node_id] += 1
        self._flush_reduce()

    def _claim_reduce_slot(self, node_id: int, app_id: int) -> bool:
        """Claim one reduce slot on ``node_id`` now, if one is free."""
        if self._reduce_capacity[node_id] <= 0:
            return False
        self._reduce_capacity[node_id] -= 1
        return True

    def _flush_reduce(self) -> None:
        """Resolve now (root context) or at the serialization point."""
        if self._reduce_resolving:
            return  # the active resolve pass loops until quiescent
        sim = self.cluster.sim
        if sim.in_callback:
            if not self._reduce_resolve_pending:
                self._reduce_resolve_pending = True
                sim.schedule_serialized(self._resolve_reduce_point)
        else:
            self._resolve_reduce()

    def _resolve_reduce_point(self) -> None:
        self._reduce_resolve_pending = False
        self._resolve_reduce()

    def _resolve_reduce(self) -> None:
        """Match free reduce slots to waiters in canonical order."""
        self._reduce_resolving = True
        try:
            progressed = True
            while progressed:
                progressed = False
                for node_id in sorted(self._reduce_waiters):
                    waiters = self._reduce_waiters[node_id]
                    while waiters:
                        i = min(
                            range(len(waiters)),
                            key=lambda j: waiters[j][0],
                        )
                        key, grant = waiters[i]
                        if not self._claim_reduce_slot(node_id, key[0]):
                            break
                        waiters.pop(i)
                        grant()
                        progressed = True
        finally:
            self._reduce_resolving = False


class JobHandle:
    """A submitted-but-not-necessarily-finished job."""

    def __init__(self, state: "_JobState") -> None:
        self._state = state

    @property
    def done(self) -> bool:
        """True once every reduce task has committed its output."""
        return self._state._done

    def result(self) -> JobResult:
        """The job's measured result; raises if it has not finished."""
        return self._state.finish()


class _JobState:
    """All mutable state for one job execution."""

    def __init__(
        self,
        runner: JobRunner,
        spec: JobSpec,
        dataset: DistributedDataset,
        model: Any,
        model_bytes: int,
        model_locations: tuple[int, ...],
        input_cached: bool,
        job_index: int,
        model_mode: str = "broadcast",
        failures: dict[int, int] | None = None,
        speculative: bool = False,
        model_gate: SplitGate | None = None,
    ) -> None:
        self.runner = runner
        self.cluster = runner.cluster
        self.pipeline = runner.pipeline
        self.model_gate = model_gate
        self.spec = spec
        self.dataset = dataset
        self.model = model
        self.model_bytes = model_bytes
        self.model_locations = tuple(model_locations) or (0,)
        self.input_cached = input_cached
        self.job_index = job_index
        self.model_mode = model_mode
        self.failures = dict(failures or {})
        self.speculative = speculative
        self._map_attempts: dict[int, int] = {}
        self._running_maps: dict[int, list[dict]] = {}
        self._completed_maps: set[int] = set()
        self._backups_launched: set[int] = set()

        self.counters = Counters()
        self.started_at = self.cluster.now
        self.finished_at: float | None = None
        self.num_maps = len(dataset.splits)
        self.num_reducers = spec.num_reducers
        # Static round-robin reduce placement (Hadoop assigns reduce
        # tasks across tasktrackers; waves happen when tasks > slots).
        self.reduce_node = [
            p % self.cluster.num_nodes for p in range(self.num_reducers)
        ]
        self._model_on_node: set[int] = set(self.model_locations)
        # partition -> (map index, record list) per arrived bucket.
        # Reduce input is consumed in map-index order regardless of
        # shuffle completion order, so the model — float for float —
        # never depends on network timing.  This is what lets barrier
        # and pipelined runs produce bit-identical results despite
        # their different flow schedules.
        self._buckets: dict[int, list[tuple[int, Any]]] = {
            p: [] for p in range(self.num_reducers)
        }
        self._bucket_arrivals = {p: 0 for p in range(self.num_reducers)}
        # Pipelined mode: simulated time at which each partition's
        # fetcher-side incremental merge of already-arrived buckets
        # finishes (a per-reduce-node work-conserving chain).
        self._merge_ready = {p: 0.0 for p in range(self.num_reducers)}
        self._maps_done = 0
        self._reduces_done = 0
        self._reduce_started = [False] * self.num_reducers
        self._reduce_waiting: list[int] = []
        self._reduce_outputs: dict[int, list[tuple[Any, Any]]] = {}
        # Keyed by partition, not appended in completion order: which
        # reduce finishes first is same-timestamp tie order, and the
        # next iteration's model placement must not depend on it.
        self._output_files: dict[int, tuple[int, ...]] = {}
        self.map_output_bytes_raw = 0
        self.shuffle_bytes = 0
        self.output_bytes = 0
        self._job_map_stats: dict[int, dict[str, float]] = {}
        self._premapped: list[tuple[Any, dict]] | None = None
        self._done = False

    # -- launch ----------------------------------------------------------

    def launch(self) -> None:
        """Kick off the job after its startup overhead."""
        self._premapped = self._precompute_maps()
        overhead = self.spec.costs.job_overhead_seconds
        self.cluster.sim.schedule(overhead, self._start_maps)

    def _precompute_maps(self) -> list[tuple[Any, dict]] | None:
        """Run every map task's real computation through the executor.

        Map tasks of one job are independent, so with a parallel
        executor they all run concurrently *now* (host wall-clock) and
        :meth:`_map_compute_phase` replays the recorded output at each
        task's simulated compute time.  Returns ``None`` — keeping the
        lazy in-process path — when the executor is serial or the job's
        callables/model cannot cross a process boundary.
        """
        if not self.runner.executor.is_parallel:
            return None
        from repro.parallel.tasks import run_map_task

        payloads = [
            (self.spec, self.model, split.index, split.records)
            for split in self.dataset.splits
        ]
        return self.runner.executor.map_or_none(run_map_task, payloads)

    def _start_maps(self) -> None:
        for split in self.dataset.splits:
            preferred = self.dataset.locations(split.index)
            self.runner.map_scheduler.request(
                callback=self._make_map_start(split.index),
                preferred=preferred,
                app_id=self.job_index,
            )

    def _make_map_start(self, split_index: int) -> Callable[[int], None]:
        def on_slot(node_id: int) -> None:
            if split_index in self._completed_maps:
                # A speculative twin already won; give the slot back.
                self.runner.map_scheduler.release(node_id, app_id=self.job_index)
                return
            attempt = {"split": split_index, "node": node_id,
                       "dead": False, "events": []}
            self._running_maps.setdefault(split_index, []).append(attempt)
            self._map_io_phase(attempt)

        return on_slot

    def _schedule_attempt(
        self, attempt: dict, delay: float, callback: Callable[[], Any]
    ) -> None:
        """Schedule a timer belonging to ``attempt`` (cancellable on kill)."""
        event = self.cluster.sim.schedule(delay, callback)
        attempt["events"].append(event)

    def _kill_attempt(self, attempt: dict) -> None:
        """Hadoop kills the losing/duplicate attempt: its pending timers
        are cancelled and its slot freed immediately.  In-flight network
        reads complete on the fabric but their continuations no-op."""
        if attempt["dead"]:
            return
        attempt["dead"] = True
        for event in attempt["events"]:
            event.cancel()
        self._running_maps[attempt["split"]].remove(attempt)
        self.counters.add("speculative_losses")
        self.runner.map_scheduler.release(attempt["node"], app_id=self.job_index)

    # -- map task ----------------------------------------------------------

    def _map_io_phase(self, attempt: dict) -> None:
        split_index = attempt["split"]
        node_id = attempt["node"]
        split = self.dataset.splits[split_index]
        pending = {"count": 1}  # 1 for the task-overhead timer

        def part_done(_arg: Any = None) -> None:
            if attempt["dead"]:
                return
            pending["count"] -= 1
            if pending["count"] == 0:
                self._map_compute_phase(attempt)

        self._schedule_attempt(
            attempt, self.spec.costs.task_overhead_seconds, part_done
        )
        # Pipelined mode: the split's prerequisite flows (the engine's
        # sub-model scatter / first-iteration co-location) may still be
        # in the air; park the task on the gate instead of having had a
        # global barrier before job submission.
        if self.model_gate is not None:
            pending["count"] += 1
            self.model_gate.on_ready(split_index, part_done)
        # Model distribution.
        if self.model_bytes > 0:
            if self.model_mode == "broadcast":
                # Whole model once per node per job (distributed cache).
                if node_id not in self._model_on_node:
                    self._model_on_node.add(node_id)
                    src = self._closest_model_replica(node_id)
                    pending["count"] += 1
                    self.cluster.transfer(
                        src, node_id, self.model_bytes,
                        TrafficCategory.MODEL_READ, part_done,
                    )
            else:
                # Partitioned: each task fetches only its input share.
                total_records = max(self.dataset.num_records, 1)
                share = self.model_bytes * len(split.records) / total_records
                if share > 0:
                    src = self._closest_model_replica(node_id)
                    pending["count"] += 1
                    if src == node_id:
                        disk = self.cluster.nodes[node_id].spec.disk_bandwidth
                        self._schedule_attempt(attempt, share / disk, part_done)
                        self.cluster.meter.record(
                            TrafficCategory.MODEL_READ, share,
                            crosses_core=False, on_fabric=False,
                        )
                    else:
                        self.cluster.transfer(
                            src, node_id, share,
                            TrafficCategory.MODEL_READ, part_done,
                        )
        # Input split read from the closest replica.  With the node
        # cache (pipelined mode) a split resident from an earlier read
        # is served from memory — free, like ``input_cached``, but
        # earned per node under the in-memory-ratio budget.
        if not self.input_cached and split.nbytes > 0:
            cache = self.runner.cache
            key = (self.dataset.path, split_index)
            if cache is None or not cache.lookup(node_id, key):
                replicas = self.dataset.locations(split_index)
                src = self._closest_of(replicas, node_id)
                pending["count"] += 1
                if src == node_id:
                    disk = self.cluster.nodes[node_id].spec.disk_bandwidth
                    self._schedule_attempt(attempt, split.nbytes / disk, part_done)
                    self.cluster.meter.record(
                        TrafficCategory.INPUT, split.nbytes,
                        crosses_core=False, on_fabric=False,
                    )
                else:
                    self.cluster.transfer(
                        src, node_id, split.nbytes, TrafficCategory.INPUT, part_done
                    )
                if cache is not None:
                    cache.put(node_id, key, split.nbytes)

    def _map_compute_phase(self, attempt: dict) -> None:
        split_index = attempt["split"]
        node_id = attempt["node"]
        # Injected fault: the attempt dies halfway through its compute;
        # its work is discarded, the slot is freed and the task is
        # rescheduled from scratch (Hadoop's retry semantics).
        tries = self._map_attempts.get(split_index, 0)
        self._map_attempts[split_index] = tries + 1
        if tries < self.failures.get(split_index, 0):
            split = self.dataset.splits[split_index]
            wasted = 0.5 * self.spec.costs.map_compute(
                len(split.records), split.nbytes
            )
            delay = self.cluster.compute_time(node_id, wasted)
            self._schedule_attempt(
                attempt, delay, lambda: self._map_attempt_failed(attempt)
            )
            return
        # The real mapper runs here (instantaneous in simulated time);
        # its compute *charge* is scheduled afterwards so dynamic costs
        # can depend on what the task actually did (ctx.stats).
        split = self.dataset.splits[split_index]
        ctx = TaskContext(model=self.model, split_index=split_index)
        if self._premapped is not None:
            output, stats = self._premapped[split_index]
            ctx.emit_all(output)
            ctx.stats.update(stats)
        else:
            self.spec.run_mapper(ctx, split.records)
        if ctx.stats:
            self._job_map_stats[split_index] = dict(ctx.stats)
        if self.spec.map_cost is not None:
            compute = self.spec.map_cost(len(split.records), split.nbytes, ctx)
        else:
            compute = self.spec.costs.map_compute(len(split.records), split.nbytes)
            # Map-side sort/serialize of the raw output (pre-combine),
            # as Hadoop's collect/spill path charges per record.
            compute += self.spec.costs.sort_seconds_per_record * ctx.output_count
        delay = self.cluster.compute_time(node_id, compute)
        self._schedule_attempt(
            attempt, delay, lambda: self._map_execute(attempt, ctx)
        )

    def _map_execute(self, attempt: dict, ctx: TaskContext) -> None:
        output = ctx.collect()
        partitioned = None
        if isinstance(output, ColumnBatch):
            partitioned = self._partition_columnar(output)
            if partitioned is None:
                output = output.to_rows()
        if partitioned is not None:
            buckets, bucket_bytes, raw_records, raw_bytes = partitioned
        else:
            assert isinstance(output, list)
            buckets, bucket_bytes, raw_bytes = self._partition_rows(output)
            raw_records = len(output)
        post_bytes = sum(bucket_bytes.values())
        # Spill the (combined) map output to local disk before serving it.
        disk = self.cluster.nodes[attempt["node"]].spec.disk_bandwidth
        self._schedule_attempt(
            attempt,
            post_bytes / disk,
            lambda: self._map_finish(
                attempt, buckets, bucket_bytes, raw_records, raw_bytes
            ),
        )

    def _partition_rows(
        self, raw_output: list[tuple[Any, Any]]
    ) -> tuple[dict[int, Any], dict[int, int], int]:
        """The reference tuple-at-a-time partition/combine path."""
        buckets: dict[int, Any] = {}
        for key, value in raw_output:
            p = self.spec.partitioner(key, self.num_reducers)
            buckets.setdefault(p, []).append((key, value))
        if self.spec.combiner is not None:
            raw_bytes = sizeof_records(raw_output)
            for p, recs in buckets.items():
                combined: list[tuple[Any, Any]] = []
                for key, values in group_by_key(recs):
                    combined.append((key, self.spec.combiner(key, values)))
                buckets[p] = combined
            bucket_bytes = {p: sizeof_records(r) for p, r in buckets.items()}
        else:
            # No combiner: the buckets are exactly the raw output
            # re-partitioned, so one sizing pass covers both totals.
            bucket_bytes = {p: sizeof_records(r) for p, r in buckets.items()}
            raw_bytes = sum(bucket_bytes.values())
        return buckets, bucket_bytes, raw_bytes

    def _partition_columnar(
        self, batch: ColumnBatch
    ) -> tuple[dict[int, Any], dict[int, int], int, int] | None:
        """Vectorized partition/combine: batched ``stable_hash``, bucket
        scatter via one stable argsort, per-column sizing.

        Returns ``None`` when the job uses a custom partitioner or the
        key layout defeats vectorized grouping — the caller then takes
        the row path, which is always available and byte-identical.
        """
        if self.spec.partitioner is not hash_partitioner:
            return None
        pids = batch.partition_ids(self.num_reducers)
        order = np.argsort(pids, kind="stable")
        sorted_batch = batch.take(order)
        counts = np.bincount(pids, minlength=self.num_reducers)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        raw_bytes = batch.nbytes_wire()
        use_combiner = self.spec.combiner is not None
        buckets: dict[int, Any] = {}
        bucket_bytes: dict[int, int] = {}
        for p in range(self.num_reducers):
            lo, hi = int(bounds[p]), int(bounds[p + 1])
            if lo == hi:
                continue
            sub = sorted_batch.slice(lo, hi)
            if use_combiner:
                grouped = group_batch(sub)
                if grouped is None:
                    return None
                combined = self._apply_combiner(grouped)
                buckets[p] = combined
                bucket_bytes[p] = sizeof_records(combined)
            else:
                buckets[p] = sub
                bucket_bytes[p] = sub.nbytes_wire()
        return buckets, bucket_bytes, len(batch), raw_bytes

    def _apply_combiner(self, grouped: GroupedBatch) -> Any:
        """Combine one bucket's groups: the batch combiner when the job
        provides one (and it accepts the layout), else the scalar
        combiner per group — identical results either way."""
        if self.spec.batch_combiner is not None:
            combined = self.spec.batch_combiner(grouped)
            if combined is not None:
                return combined
        assert self.spec.combiner is not None
        return [(k, self.spec.combiner(k, vs)) for k, vs in grouped]

    def _map_attempt_failed(self, attempt: dict) -> None:
        split_index = attempt["split"]
        self.counters.add("failed_map_attempts")
        attempt["dead"] = True
        self._running_maps[split_index].remove(attempt)
        self.runner.map_scheduler.release(attempt["node"], app_id=self.job_index)
        self.runner.map_scheduler.request(
            callback=self._make_map_start(split_index),
            preferred=self.dataset.locations(split_index),
            app_id=self.job_index,
        )

    def _map_finish(
        self,
        attempt: dict,
        buckets: dict[int, list[tuple[Any, Any]]],
        bucket_bytes: dict[int, int],
        raw_records: int,
        raw_bytes: int,
    ) -> None:
        split_index = attempt["split"]
        node_id = attempt["node"]
        self._running_maps[split_index].remove(attempt)
        self._completed_maps.add(split_index)
        self._maps_done += 1
        # Kill any speculative twins still running this split.
        for twin in list(self._running_maps.get(split_index, [])):
            self._kill_attempt(twin)
        split = self.dataset.splits[split_index]
        self.counters.add("map_input_records", len(split.records))
        self.counters.add("map_output_records", raw_records)
        self.map_output_bytes_raw += raw_bytes
        self.counters.add("map_output_bytes", raw_bytes)
        self.counters.add(
            "combine_output_records", sum(len(r) for r in buckets.values())
        )
        self.runner.map_scheduler.release(node_id, app_id=self.job_index)
        self._maybe_speculate()
        # One bulk call for the whole fan-out: the map wave's shuffle
        # triggers a single rate recompute instead of one per partition.
        requests = []
        for p in range(self.num_reducers):
            recs = buckets.get(p, [])
            nbytes = bucket_bytes.get(p, 0)
            self.shuffle_bytes += nbytes
            requests.append((
                node_id, self.reduce_node[p], nbytes, TrafficCategory.SHUFFLE,
                self._make_bucket_arrival(p, split_index, recs),
            ))
        self.cluster.transfer_batch(requests)

    def _maybe_speculate(self) -> None:
        """Launch backup attempts for stragglers once slots are idle.

        Hadoop's condition, simplified: every map is finished or
        running, free slots exist, and the straggler has no backup yet.
        The backup prefers the fastest nodes not already running the
        task; the first attempt to finish wins and the loser is killed.
        """
        if not self.speculative:
            return
        if self.runner.map_scheduler.free_slots() <= 0:
            return
        for split_index in range(self.num_maps):
            attempts = self._running_maps.get(split_index, [])
            if (
                split_index not in self._completed_maps
                and attempts
                and split_index not in self._backups_launched
            ):
                self._backups_launched.add(split_index)
                self.counters.add("speculative_attempts")
                avoid = {a["node"] for a in attempts}
                candidates = sorted(
                    (n for n in self.cluster.nodes if n.node_id not in avoid),
                    key=lambda n: (-n.spec.cpu_speed, n.node_id),
                )
                self.runner.map_scheduler.request(
                    callback=self._make_map_start(split_index),
                    preferred=tuple(n.node_id for n in candidates[:3]),
                    app_id=self.job_index,
                )

    def _make_bucket_arrival(
        self, partition: int, split_index: int, recs: Any
    ) -> Callable[..., None]:
        def on_arrival(_flow: Any = None) -> None:
            self._buckets[partition].append((split_index, recs))
            self._bucket_arrivals[partition] += 1
            if self.pipeline:
                # Merge the bucket as it lands (fetcher-side merge
                # thread): the chain is work-conserving per partition,
                # so the final task only pays whatever merge tail is
                # still outstanding when its slot frees.
                node = self.reduce_node[partition]
                merge = self.spec.costs.reduce_merge_compute(len(recs))
                ready = max(self._merge_ready[partition], self.cluster.now)
                self._merge_ready[partition] = (
                    ready + self.cluster.compute_time(node, merge)
                )
            self._maybe_start_reduce(partition)

        return on_arrival

    # -- reduce task --------------------------------------------------------

    def _maybe_start_reduce(self, partition: int) -> None:
        if self._reduce_started[partition] or partition in self._reduce_waiting:
            return
        if self._bucket_arrivals[partition] < self.num_maps:
            return
        self._reduce_waiting.append(partition)
        self.runner.acquire_reduce(
            self.reduce_node[partition],
            key=(self.job_index, partition),
            grant=lambda: self._start_reduce(partition),
        )

    def _start_reduce(self, partition: int) -> None:
        """A reduce slot was granted at the serialization point."""
        self._reduce_waiting.remove(partition)
        node = self.reduce_node[partition]
        self._reduce_started[partition] = True
        # Canonical merge order: by map index, like the sorted runs of
        # a merge sort — arrival timing must not leak into float
        # summation order, or barrier and pipelined models would drift
        # apart in the last ulp.
        stored = sorted(self._buckets[partition], key=lambda item: item[0])
        pieces = [recs for _split_index, recs in stored]
        num_records = sum(len(piece) for piece in pieces)
        if self.pipeline:
            # The merge already ran incrementally as buckets arrived;
            # pay only its unfinished tail plus the reduce function.
            compute = self.spec.costs.reduce_apply_compute(num_records)
            compute += self.spec.costs.task_overhead_seconds
            delay = max(0.0, self._merge_ready[partition] - self.cluster.now)
            delay += self.cluster.compute_time(node, compute)
        else:
            compute = self.spec.costs.reduce_compute(num_records)
            compute += self.spec.costs.task_overhead_seconds
            delay = self.cluster.compute_time(node, compute)
        self.cluster.sim.schedule(
            delay, lambda: self._reduce_execute(partition, node, pieces)
        )

    def _group_reduce_input(
        self, pieces: list[Any]
    ) -> GroupedBatch | list[tuple[Any, list[Any]]]:
        """Merge-sort of the arrived buckets: one concatenate plus one
        stable argsort when every non-empty bucket is columnar, the
        row-path ``group_by_key`` otherwise (same groups, same order)."""
        row_pieces = [p for p in pieces if isinstance(p, list) and p]
        batches = [p for p in pieces if isinstance(p, ColumnBatch)]
        if batches and not row_pieces:
            merged = concat_batches(batches)
            if merged is not None:
                grouped = group_batch(merged)
                if grouped is not None:
                    return grouped
        rows: list[tuple[Any, Any]] = []
        for piece in pieces:
            rows.extend(piece.to_rows() if isinstance(piece, ColumnBatch) else piece)
        return group_by_key(rows)

    def _reduce_execute(
        self, partition: int, node_id: int, pieces: list[Any]
    ) -> None:
        ctx = TaskContext(model=self.model)
        num_records = sum(len(piece) for piece in pieces)
        grouped = self._group_reduce_input(pieces)
        self.spec.run_reducer(ctx, grouped)
        collected = ctx.collect()
        output = (
            collected.to_rows()
            if isinstance(collected, ColumnBatch)
            else collected
        )
        self._reduce_outputs[partition] = output
        self.counters.add("reduce_input_records", num_records)
        self.counters.add("reduce_output_records", len(output))
        nbytes = sizeof_records(collected)
        self.output_bytes += nbytes
        path = f"/job-{self.job_index}/{self.spec.name}/out-{partition:05d}"
        self.runner.dfs.write(
            path,
            nbytes,
            writer_node=node_id,
            category=self.spec.output_category,
            on_complete=lambda meta: self._reduce_finish(partition, node_id, meta),
            replication=self.spec.output_replication,
        )

    def _reduce_finish(self, partition: int, node_id: int, meta: FileMeta) -> None:
        replicas: set[int] = set()
        for block in meta.blocks:
            replicas.update(block.replicas)
        if not meta.blocks:
            replicas.add(node_id)
        self._output_files[partition] = tuple(sorted(replicas))
        self.runner.release_reduce(node_id, app_id=self.job_index)
        self._reduces_done += 1
        if self._reduces_done == self.num_reducers:
            self._done = True
            self.finished_at = self.cluster.now

    def _closest_model_replica(self, node_id: int) -> int:
        return self._closest_of(self.model_locations, node_id)

    def _closest_of(self, candidates: tuple[int, ...], node_id: int) -> int:
        if node_id in candidates:
            return node_id
        topo = self.cluster.topology
        rack = topo.nodes[node_id].rack_id
        same_rack = [c for c in candidates if topo.nodes[c].rack_id == rack]
        if same_rack:
            return min(same_rack)
        return min(candidates)

    # -- results ------------------------------------------------------------

    def finish(self) -> JobResult:
        """Assemble the JobResult after the simulation quiesces."""
        if not self._done:
            raise RuntimeError(
                f"job {self.spec.name!r} did not complete: "
                f"{self._maps_done}/{self.num_maps} maps, "
                f"{self._reduces_done}/{self.num_reducers} reduces done"
            )
        output = [
            record
            for p in range(self.num_reducers)
            for record in self._reduce_outputs.get(p, [])
        ]
        self.counters.add("shuffle_bytes", self.shuffle_bytes)
        self.counters.add("output_bytes", self.output_bytes)
        assert self.finished_at is not None
        return JobResult(
            job_name=self.spec.name,
            output=output,
            counters=self.counters,
            started_at=self.started_at,
            finished_at=self.finished_at,
            map_output_bytes_raw=self.map_output_bytes_raw,
            shuffle_bytes=self.shuffle_bytes,
            output_bytes=self.output_bytes,
            # Where the next iteration reads the model from: the output
            # is striped over per-reducer files, but any reader needs all
            # of it, so the lowest partition's replica set (~replication
            # nodes) is the honest "closest copy" approximation — not the
            # union of every reducer's replicas, which would make model
            # reads free on small clusters.  Lowest *partition*, not
            # first *finished*: completion order between same-timestamp
            # reduces is tie order the result must not depend on.
            output_locations=(
                self._output_files[min(self._output_files)]
                if self._output_files
                else (0,)
            ),
            map_stats=self._job_map_stats,
        )
