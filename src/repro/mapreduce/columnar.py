"""Columnar record batches: numpy structure-of-arrays for the data plane.

A :class:`ColumnBatch` holds one typed key column and one typed value
column instead of a Python list of ``(key, value)`` tuples.  The batch
is **losslessly convertible** to and from the row representation —
``ColumnBatch.from_rows(rows).to_rows() == rows`` — so every consumer
that needs tuples still gets exactly the objects it would have seen,
while the hot paths (hash partitioning, group-by, combiner application,
wire sizing) run as whole-array numpy operations.

Equivalence contract (enforced by tests):

* **Partitioning** — :func:`stable_hash_column` is bit-identical to the
  scalar :func:`repro.mapreduce.records.stable_hash` for every key the
  typed columns accept; keys the vectorized packer cannot represent
  exactly (huge ints, numpy scalars, non-ASCII strings, ...) land in
  :class:`ObjectColumn` and are hashed with the scalar function itself.
* **Grouping** — the stable argsort of a typed key column yields the
  same group order and the same within-group value order as
  ``group_by_key`` (dict-arrival grouping followed by ``sorted``);
  key sets that would hit ``group_by_key``'s mixed-type fallback (or
  float NaNs, which Python's comparison sort handles differently from
  numpy) are detected and routed back to the row implementation.
* **Sizing** — ``nbytes_wire`` computes, per column, exactly the sum of
  :func:`repro.util.sizing.sizeof_record` over the materialized rows.

The backend is enabled by default; set ``PIC_COLUMNAR=0`` (or pass
``--columnar off`` on the CLI) to force the row path everywhere.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Iterator, Sequence

import numpy as np

from repro.mapreduce.records import group_by_key, stable_hash
from repro.util.sizing import (
    ARRAY_HEADER,
    SEQ_HEADER,
    STR_HEADER,
    sizeof_value,
)

COLUMNAR_ENV_VAR = "PIC_COLUMNAR"


def columnar_enabled() -> bool:
    """True unless ``PIC_COLUMNAR`` is set to ``0``/``off``/``false``."""
    raw = os.environ.get(COLUMNAR_ENV_VAR, "1").strip().lower()
    return raw not in ("0", "off", "false", "no")


# -- vectorized crc32 --------------------------------------------------------

_CRC_TABLE: np.ndarray | None = None


def _crc_table() -> np.ndarray:
    """The standard reflected CRC-32 table (polynomial 0xEDB88320)."""
    global _CRC_TABLE
    if _CRC_TABLE is None:
        table = np.empty(256, dtype=np.uint32)
        for i in range(256):
            c = i
            for _ in range(8):
                c = (c >> 1) ^ 0xEDB88320 if c & 1 else c >> 1
            table[i] = c
        _CRC_TABLE = table
    return _CRC_TABLE


def crc32_rows(matrix: np.ndarray) -> np.ndarray:
    """crc32 of each row of a ``(n, width)`` uint8 matrix.

    Bit-identical to ``zlib.crc32(row.tobytes())`` for every row: the
    table-driven update is the same algorithm, iterated over byte
    *columns* so the per-row state updates run vectorized.
    """
    if matrix.ndim != 2 or matrix.dtype != np.uint8:
        raise ValueError("crc32_rows needs a (n, width) uint8 matrix")
    table = _crc_table()
    crc = np.full(matrix.shape[0], 0xFFFFFFFF, dtype=np.uint32)
    for col in range(matrix.shape[1]):
        crc = (crc >> 8) ^ table[(crc ^ matrix[:, col]) & 0xFF]
    return crc ^ np.uint32(0xFFFFFFFF)


_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _hash_int64(values: np.ndarray) -> np.ndarray:
    """Vectorized ``stable_hash`` for an int64 array.

    The scalar hash packs ``b"i" + key.to_bytes(16, "little", signed=True)``;
    for int64-range keys the upper 8 bytes are pure sign extension.
    """
    mat = np.empty((len(values), 17), dtype=np.uint8)
    mat[:, 0] = ord("i")
    le = values.astype("<i8").view(np.uint8).reshape(-1, 8)
    mat[:, 1:9] = le
    mat[:, 9:] = np.where(values < 0, 0xFF, 0)[:, None].astype(np.uint8)
    return crc32_rows(mat)


def _hash_bool(values: np.ndarray) -> np.ndarray:
    """Vectorized ``stable_hash`` for a bool array (``b"b1"``/``b"b0"``)."""
    mat = np.empty((len(values), 2), dtype=np.uint8)
    mat[:, 0] = ord("b")
    mat[:, 1] = np.where(values, ord("1"), ord("0"))
    return crc32_rows(mat)


def _hash_str_rows(data: Sequence[bytes], prefix: bytes) -> np.ndarray:
    """Length-grouped vectorized crc32 over prefixed byte strings."""
    n = len(data)
    out = np.empty(n, dtype=np.uint32)
    lengths = np.fromiter((len(b) for b in data), dtype=np.int64, count=n)
    for width in np.unique(lengths):
        idx = np.flatnonzero(lengths == width)
        packed = b"".join(prefix + data[i] for i in idx)
        mat = np.frombuffer(packed, dtype=np.uint8).reshape(
            len(idx), int(width) + len(prefix)
        )
        out[idx] = crc32_rows(mat)
    return out


# -- columns -----------------------------------------------------------------


class Column:
    """One typed column of ``n`` values; subclasses define the storage."""

    def __len__(self) -> int:
        raise NotImplementedError

    def row(self, i: int) -> Any:
        """The ``i``-th value, as the exact Python object the row path sees."""
        raise NotImplementedError

    def rows(self) -> list[Any]:
        """All values as Python objects (array rows come back as views)."""
        return [self.row(i) for i in range(len(self))]

    def take(self, idx: np.ndarray) -> "Column":
        """A new column holding ``self[idx]`` (fancy indexing: copies)."""
        raise NotImplementedError

    def slice(self, start: int, stop: int) -> "Column":
        """A contiguous sub-column (array storage comes back as views)."""
        raise NotImplementedError

    def nbytes_wire(self) -> int:
        """Serialized size under the rules of :mod:`repro.util.sizing`."""
        raise NotImplementedError

    def stable_hashes(self) -> np.ndarray:
        """``stable_hash`` of every value, vectorized where the layout
        allows and via the scalar function otherwise."""
        n = len(self)
        return np.fromiter(
            (stable_hash(self.row(i)) for i in range(n)),
            dtype=np.uint32,
            count=n,
        )

    def sort_order(self) -> np.ndarray | None:
        """A stable permutation sorting the column the way ``sorted``
        orders the keys, or ``None`` when numpy's order would differ."""
        return None

    def backing_arrays(self) -> list[np.ndarray]:
        """The numpy arrays holding this column's data (for shared
        memory export); object storage has none."""
        return []


class ScalarColumn(Column):
    """int, float, or bool values with exact Python types.

    ``kind`` is one of ``"int"``/``"float"``/``"bool"``; ``row`` converts
    back with ``int()``/``float()``/``bool()`` so materialized rows are
    indistinguishable from the originals.
    """

    __slots__ = ("kind", "values")

    def __init__(self, kind: str, values: np.ndarray) -> None:
        if kind not in ("int", "float", "bool"):
            raise ValueError(f"bad scalar column kind {kind!r}")
        self.kind = kind
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def row(self, i: int) -> Any:
        v = self.values[i]
        if self.kind == "int":
            return int(v)
        if self.kind == "float":
            return float(v)
        return bool(v)

    def rows(self) -> list[Any]:
        return self.values.tolist()

    def take(self, idx: np.ndarray) -> "ScalarColumn":
        return ScalarColumn(self.kind, self.values[idx])

    def slice(self, start: int, stop: int) -> "ScalarColumn":
        return ScalarColumn(self.kind, self.values[start:stop])

    def nbytes_wire(self) -> int:
        per = 1 if self.kind == "bool" else 8
        return per * len(self.values)

    def stable_hashes(self) -> np.ndarray:
        if self.kind == "int":
            return _hash_int64(self.values)
        if self.kind == "bool":
            return _hash_bool(self.values)
        # Floats hash over repr(), which has no fixed-width encoding.
        data = [b"f" + repr(v).encode() for v in self.values.tolist()]
        return _hash_str_rows(data, b"")

    def sort_order(self) -> np.ndarray | None:
        if self.kind == "float" and bool(np.isnan(self.values).any()):
            # Python's comparison sort leaves NaNs wherever they fall;
            # numpy sorts them to the end.  Not equivalent — fall back.
            return None
        return np.argsort(self.values, kind="stable")

    def backing_arrays(self) -> list[np.ndarray]:
        return [self.values]


class StringColumn(Column):
    """ASCII strings in a numpy ``<U`` array.

    Restricted to ASCII without trailing NULs so that byte lengths equal
    character counts (wire sizing) and numpy's lexicographic order
    matches Python's (grouping); everything else goes to
    :class:`ObjectColumn`.
    """

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray) -> None:
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def row(self, i: int) -> str:
        return str(self.values[i])

    def rows(self) -> list[Any]:
        return self.values.tolist()

    def take(self, idx: np.ndarray) -> "StringColumn":
        return StringColumn(self.values[idx])

    def slice(self, start: int, stop: int) -> "StringColumn":
        return StringColumn(self.values[start:stop])

    def nbytes_wire(self) -> int:
        if len(self.values) == 0:
            return 0
        lengths = np.char.str_len(self.values)
        return int(lengths.sum()) + STR_HEADER * len(self.values)

    def stable_hashes(self) -> np.ndarray:
        data = [s.encode("utf-8") for s in self.values.tolist()]
        return _hash_str_rows(data, b"s")

    def sort_order(self) -> np.ndarray | None:
        return np.argsort(self.values, kind="stable")

    def backing_arrays(self) -> list[np.ndarray]:
        return [self.values]


class ArrayColumn(Column):
    """ndarray values of one dtype and shape, stacked into ``data``.

    ``data`` has shape ``(n, *row_shape)``; ``row`` returns a view, so
    materialized rows share storage with the column (read-only use only
    — pic-lint's PIC304 guards the escape hatches).
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        if data.ndim < 2:
            raise ValueError("ArrayColumn data must be at least 2-d")
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def row(self, i: int) -> np.ndarray:
        return self.data[i]

    def rows(self) -> list[Any]:
        return list(self.data)

    def take(self, idx: np.ndarray) -> "ArrayColumn":
        return ArrayColumn(self.data[idx])

    def slice(self, start: int, stop: int) -> "ArrayColumn":
        return ArrayColumn(self.data[start:stop])

    def nbytes_wire(self) -> int:
        n = len(self.data)
        row_nbytes = self.data.itemsize * int(
            np.prod(self.data.shape[1:], dtype=np.int64)
        )
        return (row_nbytes + ARRAY_HEADER) * n

    def stable_hashes(self) -> np.ndarray:
        raise TypeError("unhashable partition key type: ndarray")

    def backing_arrays(self) -> list[np.ndarray]:
        return [self.data]


class TupleColumn(Column):
    """Tuples of one arity, one sub-column per slot."""

    __slots__ = ("slots", "length")

    def __init__(self, slots: tuple[Column, ...], length: int | None = None) -> None:
        if not slots and length is None:
            raise ValueError("zero-arity TupleColumn needs an explicit length")
        self.slots = slots
        self.length = length if length is not None else len(slots[0])
        for slot in slots:
            if len(slot) != self.length:
                raise ValueError("TupleColumn slots disagree on length")

    def __len__(self) -> int:
        return self.length

    def row(self, i: int) -> tuple[Any, ...]:
        return tuple(slot.row(i) for slot in self.slots)

    def rows(self) -> list[Any]:
        if not self.slots:
            return [()] * self.length
        return list(zip(*(slot.rows() for slot in self.slots)))

    def take(self, idx: np.ndarray) -> "TupleColumn":
        return TupleColumn(
            tuple(slot.take(idx) for slot in self.slots), length=len(idx)
        )

    def slice(self, start: int, stop: int) -> "TupleColumn":
        start, stop, _ = slice(start, stop).indices(self.length)
        return TupleColumn(
            tuple(slot.slice(start, stop) for slot in self.slots),
            length=max(stop - start, 0),
        )

    def nbytes_wire(self) -> int:
        return SEQ_HEADER * self.length + sum(
            slot.nbytes_wire() for slot in self.slots
        )

    def stable_hashes(self) -> np.ndarray:
        # Scalar packing: b"t" + b"|".join(item_hash.to_bytes(8, "little")).
        n = self.length
        arity = len(self.slots)
        if arity == 0:
            return np.full(n, zlib.crc32(b"t"), dtype=np.uint32)
        width = 1 + 9 * arity - 1  # "t", then 8-byte hashes joined by "|"
        mat = np.empty((n, width), dtype=np.uint8)
        mat[:, 0] = ord("t")
        for s, slot in enumerate(self.slots):
            base = 1 + 9 * s
            if s > 0:
                mat[:, base - 1] = ord("|")
            hashes = slot.stable_hashes().astype(np.uint64)
            mat[:, base : base + 8] = (
                hashes.astype("<u8").view(np.uint8).reshape(-1, 8)
            )
        return crc32_rows(mat)

    def sort_order(self) -> np.ndarray | None:
        if not self.slots:
            return np.arange(self.length)
        sort_keys: list[np.ndarray] = []
        for slot in reversed(self.slots):
            if isinstance(slot, ScalarColumn):
                if slot.kind == "float" and bool(np.isnan(slot.values).any()):
                    return None
                sort_keys.append(slot.values)
            elif isinstance(slot, StringColumn):
                sort_keys.append(slot.values)
            else:
                return None
        return np.lexsort(sort_keys)

    def backing_arrays(self) -> list[np.ndarray]:
        return [a for slot in self.slots for a in slot.backing_arrays()]


class ObjectColumn(Column):
    """The lossless fallback: any Python objects, stored as-is."""

    __slots__ = ("values",)

    def __init__(self, values: list[Any]) -> None:
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def row(self, i: int) -> Any:
        return self.values[i]

    def rows(self) -> list[Any]:
        return list(self.values)

    def take(self, idx: np.ndarray) -> "ObjectColumn":
        return ObjectColumn([self.values[int(i)] for i in idx])

    def slice(self, start: int, stop: int) -> "ObjectColumn":
        return ObjectColumn(self.values[start:stop])

    def nbytes_wire(self) -> int:
        return sum(sizeof_value(v) for v in self.values)


# -- column construction -----------------------------------------------------


def _is_clean_ascii(s: str) -> bool:
    # numpy "<U" arrays silently trim trailing NULs; non-ASCII strings
    # break the bytes==chars sizing identity and numpy-vs-Python sort order.
    return s.isascii() and not s.endswith("\x00")


def build_column(values: list[Any]) -> Column:
    """Build the most specific column that represents ``values`` losslessly."""
    if not values:
        return ObjectColumn([])
    first = values[0]
    t = type(first)
    if t is bool:
        if all(type(v) is bool for v in values):
            return ScalarColumn("bool", np.array(values, dtype=bool))
    elif t is int:
        if all(
            type(v) is int and _INT64_MIN <= v <= _INT64_MAX for v in values
        ):
            return ScalarColumn(
                "int", np.array(values, dtype=np.int64)
            )
    elif t is float:
        if all(type(v) is float for v in values):
            return ScalarColumn("float", np.array(values, dtype=np.float64))
    elif t is str:
        if all(type(v) is str and _is_clean_ascii(v) for v in values):
            return StringColumn(np.array(values))
    elif t is np.ndarray:
        dtype, shape = first.dtype, first.shape
        if shape and all(
            type(v) is np.ndarray and v.dtype == dtype and v.shape == shape
            for v in values
        ):
            return ArrayColumn(np.stack(values))
    elif t is tuple:
        arity = len(first)
        if all(type(v) is tuple and len(v) == arity for v in values):
            if arity == 0:
                return TupleColumn((), length=len(values))
            slots = tuple(
                build_column([v[s] for v in values]) for s in range(arity)
            )
            return TupleColumn(slots, length=len(values))
    return ObjectColumn(list(values))


def int_column(values: np.ndarray) -> ScalarColumn:
    """Wrap an int64 array emitted by a vectorized mapper."""
    return ScalarColumn("int", np.ascontiguousarray(values, dtype=np.int64))


def float_column(values: np.ndarray) -> ScalarColumn:
    """Wrap a float64 array emitted by a vectorized mapper."""
    return ScalarColumn("float", np.ascontiguousarray(values, dtype=np.float64))


# -- batches -----------------------------------------------------------------


class ColumnBatch:
    """A batch of ``(key, value)`` records in structure-of-arrays form."""

    # __weakref__ lets the shm export cache key live handles to a batch
    # without extending its lifetime (pickling ignores the slot).
    __slots__ = ("keys", "values", "__weakref__")

    def __init__(self, keys: Column, values: Column) -> None:
        if len(keys) != len(values):
            raise ValueError(
                f"key column has {len(keys)} rows, value column {len(values)}"
            )
        self.keys = keys
        self.values = values

    @classmethod
    def from_rows(cls, rows: Sequence[tuple[Any, Any]]) -> "ColumnBatch":
        """Columnize a row list; every value round-trips exactly."""
        keys = build_column([k for k, _v in rows])
        values = build_column([v for _k, v in rows])
        return cls(keys, values)

    def to_rows(self) -> list[tuple[Any, Any]]:
        """Materialize the row representation."""
        return list(zip(self.keys.rows(), self.values.rows()))

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        return iter(self.to_rows())

    def take(self, idx: np.ndarray) -> "ColumnBatch":
        return ColumnBatch(self.keys.take(idx), self.values.take(idx))

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        return ColumnBatch(
            self.keys.slice(start, stop), self.values.slice(start, stop)
        )

    def nbytes_wire(self) -> int:
        """Total wire size; equals ``sizeof_records(self.to_rows())``."""
        return self.keys.nbytes_wire() + self.values.nbytes_wire()

    def partition_ids(self, num_partitions: int) -> np.ndarray:
        """``stable_hash(key) % num_partitions`` for every row, batched."""
        if num_partitions <= 0:
            raise ValueError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        hashes = self.keys.stable_hashes().astype(np.int64)
        return hashes % num_partitions

    def backing_arrays(self) -> list[np.ndarray]:
        """All numpy arrays backing both columns (shared-memory export)."""
        return self.keys.backing_arrays() + self.values.backing_arrays()


def as_column_batch(records: Any) -> ColumnBatch | None:
    """``records`` as a :class:`ColumnBatch`, or ``None`` if it is rows."""
    return records if isinstance(records, ColumnBatch) else None


def concat_batches(batches: Sequence[ColumnBatch]) -> ColumnBatch | None:
    """Concatenate batches in order; ``None`` when column types disagree."""
    if not batches:
        return None
    if len(batches) == 1:
        return batches[0]
    keys = _concat_columns([b.keys for b in batches])
    values = _concat_columns([b.values for b in batches])
    if keys is None or values is None:
        return None
    return ColumnBatch(keys, values)


def _concat_columns(cols: list[Column]) -> Column | None:
    kinds = {type(c) for c in cols}
    if kinds == {ScalarColumn}:
        scalars = [c for c in cols if isinstance(c, ScalarColumn)]
        if len({c.kind for c in scalars}) != 1:
            return None
        return ScalarColumn(
            scalars[0].kind, np.concatenate([c.values for c in scalars])
        )
    if kinds == {StringColumn}:
        return StringColumn(
            np.concatenate(
                [c.values for c in cols if isinstance(c, StringColumn)]
            )
        )
    if kinds == {ArrayColumn}:
        arrays = [c.data for c in cols if isinstance(c, ArrayColumn)]
        shapes = {a.shape[1:] for a in arrays}
        dtypes = {a.dtype for a in arrays}
        if len(shapes) != 1 or len(dtypes) != 1:
            return None
        return ArrayColumn(np.concatenate(arrays))
    if kinds == {TupleColumn}:
        tuples = [c for c in cols if isinstance(c, TupleColumn)]
        arities = {len(c.slots) for c in tuples}
        if len(arities) != 1:
            return None
        total = sum(c.length for c in tuples)
        arity = arities.pop()
        if arity == 0:
            return TupleColumn((), length=total)
        slots: list[Column] = []
        for s in range(arity):
            merged = _concat_columns([c.slots[s] for c in tuples])
            if merged is None:
                return None
            slots.append(merged)
        return TupleColumn(tuple(slots), length=total)
    if kinds == {ObjectColumn}:
        return ObjectColumn(
            [v for c in cols if isinstance(c, ObjectColumn) for v in c.values]
        )
    return None


# -- grouping ----------------------------------------------------------------


class GroupedBatch:
    """Grouped-by-key records, behaving like ``list[(key, list[values])]``.

    Built from a key-sorted batch plus group boundaries.  Scalar
    consumers iterate it exactly like ``group_by_key``'s output;
    vectorized consumers read ``sorted_values`` / ``starts`` / ``ends``
    and never materialize per-row Python objects.
    """

    __slots__ = ("sorted_keys", "sorted_values", "starts", "ends", "_rows")

    def __init__(
        self, sorted_keys: Column, sorted_values: Column, starts: np.ndarray
    ) -> None:
        self.sorted_keys = sorted_keys
        self.sorted_values = sorted_values
        self.starts = starts
        n = len(sorted_keys)
        self.ends = np.append(starts[1:], n)
        self._rows: list[Any] | None = None

    def __len__(self) -> int:
        return len(self.starts)

    def unique_keys(self) -> Column:
        """One key per group, in group order."""
        return self.sorted_keys.take(self.starts)

    def group_key(self, g: int) -> Any:
        return self.sorted_keys.row(int(self.starts[g]))

    def group_values(self, g: int) -> list[Any]:
        if self._rows is None:
            self._rows = self.sorted_values.rows()
        return self._rows[int(self.starts[g]) : int(self.ends[g])]

    def __getitem__(self, g: int) -> tuple[Any, list[Any]]:
        return (self.group_key(g), self.group_values(g))

    def __iter__(self) -> Iterator[tuple[Any, list[Any]]]:
        for g in range(len(self.starts)):
            yield self[g]


def group_batch(batch: ColumnBatch) -> GroupedBatch | None:
    """Vectorized ``group_by_key``; ``None`` when equivalence cannot be
    guaranteed (object/NaN keys), in which case the caller must fall
    back to the row implementation."""
    order = batch.keys.sort_order()
    if order is None:
        return None
    sorted_batch = batch.take(order)
    starts = _group_starts(sorted_batch.keys)
    if starts is None:
        return None
    return GroupedBatch(sorted_batch.keys, sorted_batch.values, starts)


def _group_starts(sorted_keys: Column) -> np.ndarray | None:
    n = len(sorted_keys)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if isinstance(sorted_keys, (ScalarColumn, StringColumn)):
        changed = sorted_keys.values[1:] != sorted_keys.values[:-1]
    elif isinstance(sorted_keys, TupleColumn):
        if not sorted_keys.slots:
            changed = np.zeros(n - 1, dtype=bool)
        else:
            changed = np.zeros(n - 1, dtype=bool)
            for slot in sorted_keys.slots:
                slot_starts = _group_starts_values(slot)
                if slot_starts is None:
                    return None
                changed |= slot_starts
    else:
        return None
    return np.flatnonzero(np.concatenate(([True], changed))).astype(np.int64)


def _group_starts_values(slot: Column) -> np.ndarray | None:
    if isinstance(slot, (ScalarColumn, StringColumn)):
        return np.asarray(slot.values[1:] != slot.values[:-1])
    return None


def singleton_groups(batch: ColumnBatch) -> GroupedBatch:
    """View a combined batch (one row per key) as single-value groups.

    This is the grouped shape a reducer sees after a combiner ran: the
    same keys in the same order, each with a one-element value list.
    """
    return GroupedBatch(
        batch.keys, batch.values, np.arange(len(batch), dtype=np.int64)
    )


def group_records(
    output: ColumnBatch | list[tuple[Any, Any]],
) -> GroupedBatch | list[tuple[Any, list[Any]]]:
    """Group map output by key: vectorized for batches, rows otherwise."""
    batch = as_column_batch(output)
    if batch is not None:
        grouped = group_batch(batch)
        if grouped is not None:
            return grouped
        output = batch.to_rows()
    assert isinstance(output, list)
    return group_by_key(output)


def emit_first_values(ctx: Any, grouped: Sequence[tuple[Any, list[Any]]]) -> None:
    """Identity reduce — emit each group's first value.

    The vectorized path (one ``take`` per column) and the scalar loop
    produce identical rows; shared by the smoothing, linear-solver, and
    PageRank-propagate reducers.
    """
    if isinstance(grouped, GroupedBatch):
        ctx.emit_batch(
            ColumnBatch(
                grouped.unique_keys(),
                grouped.sorted_values.take(grouped.starts),
            )
        )
        return
    for key, values in grouped:
        ctx.emit(key, values[0])
