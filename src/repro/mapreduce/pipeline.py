"""Pipelined-execution gate and the split-readiness latch.

``PIC_PIPELINE`` (default **off**) switches the stack from Hadoop-style
barrier execution to a pipelined schedule:

* the engine's model scatter no longer drains the event queue before
  the job starts — each map task waits only on *its own* split's
  prerequisite flows (tracked by :class:`SplitGate`);
* reducers merge shuffle buckets as they land instead of paying the
  full merge after the last arrival;
* loop-invariant splits live in the simulated node-memory cache
  (:mod:`repro.cluster.cache`) so iterations after the first skip the
  re-read, and iterations after the first run on warm containers
  (no job/task launch overhead — the Spark/HaLoop executor model).

Unlike ``PIC_COLUMNAR``/``PIC_WORKERS`` — wall-clock knobs that keep
the simulation bit-identical — pipelining deliberately *changes*
simulated timing: the invariants are same final model, same data-plane
byte totals, completion time no worse than barrier mode.  Pipelined
runs therefore carry their own frozen reference.
"""

from __future__ import annotations

import os
from typing import Any, Callable

PIPELINE_ENV_VAR = "PIC_PIPELINE"


def pipeline_enabled() -> bool:
    """Pipelined execution toggle (``PIC_PIPELINE``, default off)."""
    raw = os.environ.get(PIPELINE_ENV_VAR, "").strip().lower()
    return raw in ("1", "on", "true", "yes")


class SplitGate:
    """Per-split prerequisite latch replacing a global barrier.

    The producer side registers one dependency per in-flight flow a
    split waits on (:meth:`add_dependency` returns the completion
    callback to hand to the flow) and the consumer side parks work via
    :meth:`on_ready`.  Callbacks registered to this latch are *flow
    continuations*: they fire from the simulated network's completion
    events and must never be invoked synchronously by other code
    (pic-lint PIC401 knows ``on_ready``).

    A split with no registered dependencies is ready immediately, so
    ``on_ready`` degenerates to a direct dispatch and barrier-mode
    code paths need no special casing.
    """

    def __init__(self, num_splits: int) -> None:
        if num_splits < 0:
            raise ValueError(f"num_splits must be non-negative, got {num_splits}")
        self._pending = [0] * num_splits
        self._waiters: list[list[Callable[[], None]]] = [
            [] for _ in range(num_splits)
        ]

    def add_dependency(self, *split_indices: int) -> Callable[..., None]:
        """Register one prerequisite; returns its completion callback.

        One flow may carry data for several splits (an aggregated
        scatter), so the dependency can cover many indices at once.
        The returned callable accepts (and ignores) one positional
        argument so it can serve directly as a flow ``on_complete``.
        It is idempotent — cancelled-and-retried flows may double-fire.
        """
        for split_index in split_indices:
            self._pending[split_index] += 1
        fired = [False]

        def done(_arg: Any = None) -> None:
            if fired[0]:
                return
            fired[0] = True
            for split_index in split_indices:
                self._pending[split_index] -= 1
                if self._pending[split_index] == 0:
                    waiters = self._waiters[split_index]
                    self._waiters[split_index] = []
                    for waiter in waiters:
                        waiter()

        return done

    def on_ready(self, split_index: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` once every dependency of the split completed.

        Fires immediately when the split is already ready (its
        dependencies are in the simulated past).
        """
        if self._pending[split_index] == 0:
            callback()
        else:
            self._waiters[split_index].append(callback)

    def pending(self, split_index: int) -> int:
        """Outstanding dependency count for one split (for tests)."""
        return self._pending[split_index]
